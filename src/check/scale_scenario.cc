#include "src/check/scale_scenario.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fuzz_scenario.h"
#include "src/check/oracles.h"
#include "src/core/contract.h"
#include "src/core/resource.h"
#include "src/core/viceroy.h"
#include "src/metrics/experiment.h"
#include "src/net/link.h"
#include "src/rpc/endpoint.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/strategies/centralized.h"

namespace odyssey {
namespace {

// The stepped supply waveform, in KB/s.  Each level holds for a quarter of
// the horizon; every transition moves availability far outside the [0.7x,
// 1.3x] windows the applications hold, so each one triggers a full
// re-registration storm across all N apps.
constexpr double kWaveKbps[] = {60.0, 200.0, 30.0, 120.0};

constexpr Duration kCancelSweepPeriod = 500 * kMillisecond;
constexpr Duration kOraclePeriod = 100 * kMillisecond;
constexpr Duration kDrainGrace = 2 * kSecond;
// Apps holding a second (idle) connection, so the scale rig exercises more
// than one bucket of the strategy's connection-count histogram.
constexpr int kMultiConnectionApps = 8;

struct ScaleParams {
  int apps = 100;
  // Connections that receive synthetic throughput observations; the rest
  // stay idle, as in a real deployment where most clients are quiescent.
  int hot_connections = 32;
  Duration horizon = 10 * kSecond;
  Duration feed_period = 50 * kMillisecond;
  // Apps recycled (cancel + re-register) per sweep, exercising request-table
  // slot reuse under load.
  int cancel_sweep = 256;
  // OracleSet::set_max_audited_connections (0 = audit everything).
  size_t max_audited_connections = 0;
  SupplyModelKind kind = SupplyModelKind::kIncremental;
  ReevaluateMode mode = ReevaluateMode::kIndexed;
};

// The FuzzScenario handed to OracleSet: its segments mirror the rig's
// waveform so the byte-conservation bound is the true capacity integral
// (the rig never moves bytes through the link, so the bound is slack).
FuzzScenario SyntheticScenario(const ScaleParams& params, uint64_t seed) {
  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.horizon = params.horizon;
  for (const double kbps : kWaveKbps) {
    FuzzSegment segment;
    segment.duration = params.horizon / 4;
    segment.bandwidth_bps = kbps * 1024.0 * static_cast<double>(params.hot_connections);
    segment.latency = 10 * kMillisecond;
    scenario.segments.push_back(segment);
  }
  return scenario;
}

class ScaleRig {
 public:
  ScaleRig(const ScaleParams& params, uint64_t seed, TraceRecorder* trace)
      : params_(params),
        scenario_(SyntheticScenario(params, seed)),
        sim_(seed),
        link_(&sim_, scenario_.segments.front().bandwidth_bps, 10 * kMillisecond),
        viceroy_(&sim_, MakeStrategy(&sim_, params), kUpcallLatency) {
    sim_.set_trace(trace);
    strategy_ = static_cast<CentralizedStrategy*>(&viceroy_.strategy());
    viceroy_.set_reevaluate_mode(params.mode);
    oracle_ = std::make_unique<OracleSet>(scenario_, &sim_, &viceroy_, strategy_, &link_);
    oracle_->set_max_audited_connections(params.max_audited_connections);
  }

  TrialMetrics Run() {
    const auto wall_start = std::chrono::steady_clock::now();
    Build();
    viceroy_.upcalls().set_delivery_observer(
        [this](AppId app, uint64_t seq, RequestId request, ResourceId resource, double level,
               Time posted_at) {
          oracle_->OnUpcallDelivered(app, seq, request, resource, level, posted_at);
        });
    sim_.set_step_observer([this](Time when) { oracle_->OnStep(when); });
    sim_.set_tie_observer([this](Time when, uint64_t prev_seq, uint64_t seq) {
      oracle_->OnTieBreak(when, prev_seq, seq);
    });
    sim_.Post(params_.feed_period, [this] { Feed(); });
    sim_.Post(kOraclePeriod, [this] { SampleOracle(); });
    sim_.Post(kCancelSweepPeriod, [this] { CancelSweep(); });
    sim_.RunUntil(params_.horizon + kDrainGrace);
    sim_.set_step_observer({});
    sim_.set_tie_observer({});
    viceroy_.upcalls().set_delivery_observer({});
    oracle_->Finish();
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
    return Metrics(wall.count());
  }

 private:
  struct AppState {
    AppId id = 0;
    RequestId request = 0;  // current registration; 0 = none
  };

  static std::unique_ptr<BandwidthStrategy> MakeStrategy(Simulation* sim,
                                                         const ScaleParams& params) {
    return std::make_unique<CentralizedStrategy>(sim, SupplyModelConfig{}, params.kind);
  }

  void Build() {
    Rng rng(sim_.rng().NextU64());
    apps_.reserve(params_.apps);
    endpoints_.reserve(params_.apps);
    for (int i = 0; i < params_.apps; ++i) {
      AppState app;
      app.id = viceroy_.RegisterApplication("scale" + std::to_string(i));
      endpoints_.push_back(std::make_unique<Endpoint>(&sim_, &link_, "server"));
      viceroy_.AttachConnection(app.id, endpoints_.back().get());
      apps_.push_back(app);
    }
    // A handful of two-connection apps: their idle availability is 2x the
    // per-connection fair share, populating a second level of the indexed
    // re-evaluation's idle probe.
    for (int i = 0; i < std::min(kMultiConnectionApps, params_.apps); ++i) {
      extra_endpoints_.push_back(std::make_unique<Endpoint>(&sim_, &link_, "server2"));
      viceroy_.AttachConnection(apps_[i].id, extra_endpoints_.back().get());
    }
    const int hot = std::min(params_.hot_connections, params_.apps);
    weights_.reserve(hot);
    for (int i = 0; i < hot; ++i) {
      weights_.push_back(rng.Uniform(0.5, 1.5));
    }
    for (AppState& app : apps_) {
      RegisterWindow(&app, viceroy_.CurrentLevel(app.id, ResourceId::kNetworkBandwidth));
    }
  }

  // Registers a [0.7x, 1.3x] window around |level| for |app|.  A level that
  // moved between upcall post and delivery can make the first attempt
  // out-of-bounds; the retry re-centers on the reported current level, which
  // by construction the new window contains.
  void RegisterWindow(AppState* app, double level) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      ResourceDescriptor descriptor;
      descriptor.resource = ResourceId::kNetworkBandwidth;
      descriptor.lower = level * 0.7;
      descriptor.upper = std::max(level * 1.3, descriptor.lower + 1.0);
      descriptor.handler = [this, app](RequestId, ResourceId resource, double new_level) {
        if (resource != ResourceId::kNetworkBandwidth) {
          return;
        }
        app->request = 0;  // the delivered upcall consumed the registration
        RegisterWindow(app, new_level);
      };
      const RequestResult result = viceroy_.Request(app->id, descriptor);
      if (result.ok()) {
        app->request = result.id;
        ++windows_registered_;
        oracle_->OnWindowRegistered(app->id, result.id, descriptor.lower, descriptor.upper);
        return;
      }
      level = result.current_level;
    }
  }

  double WaveRateBps(Time now) const {
    const Duration step = params_.horizon / 4;
    const size_t index =
        std::min<size_t>(step == 0 ? 0 : static_cast<size_t>(now / step), std::size(kWaveKbps) - 1);
    return kWaveKbps[index] * 1024.0;
  }

  // Synthetic passive observations: each hot connection reports one window
  // per feed period at its share of the waveform rate, with a round trip
  // every tenth tick.  Feeding the logs directly (rather than moving real
  // traffic) keeps the trial's cost concentrated in the estimator and
  // re-evaluation paths this campaign measures.
  void Feed() {
    const Time now = sim_.now();
    if (now >= params_.horizon) {
      return;
    }
    const double rate = WaveRateBps(now);
    const double period_s = DurationToSeconds(params_.feed_period);
    const int hot = static_cast<int>(weights_.size());
    for (int i = 0; i < hot; ++i) {
      endpoints_[i]->log().RecordThroughput(now, rate * weights_[i] * period_s,
                                            params_.feed_period);
      if (static_cast<int>(tick_ % 10) == i % 10) {
        endpoints_[i]->log().RecordRoundTrip(now,
                                             10 * kMillisecond + static_cast<Duration>(i) * 100);
      }
    }
    ++tick_;
    sim_.Post(params_.feed_period, [this] { Feed(); });
  }

  void SampleOracle() {
    if (sim_.now() > params_.horizon) {
      return;
    }
    oracle_->Sample();
    sim_.Post(kOraclePeriod, [this] { SampleOracle(); });
  }

  // Rotates through the apps cancelling and immediately re-registering
  // their windows, so request-table slots are freed and reused throughout
  // the run.  A cancel that fails lost the race with an in-flight upcall,
  // whose handler re-registers instead.
  void CancelSweep() {
    if (sim_.now() >= params_.horizon) {
      return;
    }
    const int sweep = std::min<int>(params_.cancel_sweep, static_cast<int>(apps_.size()));
    for (int i = 0; i < sweep; ++i) {
      AppState& app = apps_[cancel_cursor_++ % apps_.size()];
      if (app.request == 0) {
        continue;
      }
      const RequestId cancelled = app.request;
      if (viceroy_.Cancel(cancelled).ok()) {
        oracle_->OnWindowCancelled(cancelled);
        app.request = 0;
        RegisterWindow(&app, viceroy_.CurrentLevel(app.id, ResourceId::kNetworkBandwidth));
      }
    }
    sim_.Post(kCancelSweepPeriod, [this] { CancelSweep(); });
  }

  TrialMetrics Metrics(double wall_seconds) {
    const UpcallDispatcher& upcalls = viceroy_.upcalls();
    const double events = static_cast<double>(sim_.events_processed());
    return TrialMetrics{
        {"sim_events", events, MetricDirection::kEither},
        {"upcalls", static_cast<double>(upcalls.delivered_count()), MetricDirection::kEither},
        {"windows_registered", static_cast<double>(windows_registered_),
         MetricDirection::kEither},
        {"upcall_latency_mean_ms", upcalls.latency_mean_us() / 1000.0,
         MetricDirection::kLowerIsBetter},
        {"upcall_latency_max_ms", DurationToMillis(upcalls.latency_max()),
         MetricDirection::kLowerIsBetter},
        {"model_scan_ops", static_cast<double>(strategy_->supply_model().scan_ops()),
         MetricDirection::kLowerIsBetter},
        {"oracle_violations", static_cast<double>(oracle_->violation_count()),
         MetricDirection::kLowerIsBetter},
        // wall_* metrics depend on the machine and are stripped by
        // `ody_bench run --strip-wall-out` before CI's byte comparison.
        {"wall_seconds", wall_seconds, MetricDirection::kEither},
        {"wall_events_per_sec", wall_seconds > 0.0 ? events / wall_seconds : 0.0,
         MetricDirection::kHigherIsBetter},
    };
  }

  const ScaleParams params_;
  const FuzzScenario scenario_;
  Simulation sim_;
  Link link_;
  // Endpoints are declared before the viceroy so they are destroyed after
  // it: the strategy's destructor unsubscribes from their observation logs
  // (the same ordering OdysseyClient enforces in its destructor).
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Endpoint>> extra_endpoints_;
  Viceroy viceroy_;
  CentralizedStrategy* strategy_ = nullptr;
  std::unique_ptr<OracleSet> oracle_;
  std::vector<AppState> apps_;
  std::vector<double> weights_;
  uint64_t tick_ = 0;
  uint64_t windows_registered_ = 0;
  size_t cancel_cursor_ = 0;
};

TrialMetrics RunScaleTrial(const ScaleParams& params, uint64_t seed, TraceRecorder* trace) {
  ScaleRig rig(params, seed, trace);
  return rig.Run();
}

ScaleParams VariantParams(int apps, int hot, size_t audited) {
  ScaleParams params;
  params.apps = apps;
  params.hot_connections = hot;
  params.max_audited_connections = audited;
  return params;
}

}  // namespace

void RegisterScaleScenarios(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "scale_core";
  scenario.description =
      "viceroy hot core under N re-registering windows with all fuzzing oracles on";

  const auto add = [&scenario](const std::string& name, const ScaleParams& params) {
    scenario.variants.push_back(ScenarioVariant{
        name, [params](uint64_t seed, TraceRecorder* trace) {
          return RunScaleTrial(params, seed, trace);
        }});
  };

  add("n100", VariantParams(100, 32, 0));
  add("n1k", VariantParams(1000, 64, 0));
  add("n10k", VariantParams(10000, 64, 2048));
  add("n100k", VariantParams(100000, 64, 2048));

  // The pre-scale reference stack at N=10k: the naive supply model's
  // O(connections) recomputation per query makes every re-evaluation
  // quadratic, so the variant runs a deliberately reduced schedule — the
  // comparison against n10k is the events-per-wall-second *rate*, which is
  // schedule-length independent.
  ScaleParams naive = VariantParams(10000, 2, 64);
  naive.kind = SupplyModelKind::kNaive;
  naive.mode = ReevaluateMode::kFullScan;
  naive.horizon = 1 * kSecond;
  naive.feed_period = 250 * kMillisecond;
  add("n10k_naive", naive);

  const Status status = registry->Register(std::move(scenario));
  ODY_ASSERT(status.ok(), "scale scenario registration failed");
}

CampaignSpec ScaleCampaign() {
  CampaignSpec spec;
  spec.name = "tier_scale";
  spec.description =
      "hot-core scaling: events/sec, upcall latency and oracle cleanliness at N in "
      "{100, 1k, 10k, 100k}, plus the naive reference rate at 10k";
  spec.sweeps = {
      SweepSpec{"scale_core", {"n100"}, 3},
      SweepSpec{"scale_core", {"n1k"}, 2},
      SweepSpec{"scale_core", {"n10k"}, 1},
      SweepSpec{"scale_core", {"n100k"}, 1},
      SweepSpec{"scale_core", {"n10k_naive"}, 1},
  };
  return spec;
}

}  // namespace odyssey

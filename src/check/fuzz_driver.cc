#include "src/check/fuzz_driver.h"

#include <algorithm>
#include <string>

#include "src/core/tsop_codec.h"
#include "src/core/warden.h"
#include "src/metrics/experiment.h"
#include "src/servers/calibration.h"
#include "src/sim/random.h"
#include "src/wardens/bitstream_warden.h"
#include "src/wardens/file_warden.h"
#include "src/wardens/speech_warden.h"
#include "src/wardens/telemetry_warden.h"
#include "src/wardens/video_warden.h"
#include "src/wardens/web_warden.h"

namespace odyssey {

ReplayTrace BuildTrace(const FuzzScenario& scenario) {
  ReplayTrace trace;
  for (const FuzzSegment& segment : scenario.segments) {
    trace.Append(segment.duration, segment.bandwidth_bps, segment.latency);
  }
  return trace;
}

FaultPlan BuildFaultPlan(const FuzzScenario& scenario) {
  FaultPlan plan;
  plan.WithSeed(SplitMix64(scenario.seed ^ 0x6661756c7473ULL).Next());
  for (const FuzzFault& fault : scenario.faults) {
    switch (fault.kind) {
      case FuzzFaultKind::kDropProbability:
        plan.WithDropProbability(std::max(plan.drop_probability, fault.p));
        break;
      case FuzzFaultKind::kDropMessage:
        plan.WithDroppedMessage(fault.index);
        break;
      case FuzzFaultKind::kOutage:
        plan.WithOutage(fault.start, fault.duration);
        break;
      case FuzzFaultKind::kLatencySpike:
        plan.WithLatencySpike(fault.start, fault.duration, fault.extra);
        break;
      case FuzzFaultKind::kServerStall:
        plan.WithServerStall(fault.start, fault.duration, fault.extra);
        break;
      case FuzzFaultKind::kFlowKill:
        plan.WithFlowKill(fault.start);
        break;
    }
  }
  return plan;
}

void FuzzDriver::Start() {
  client_->sim()->ScheduleAt(app_.start, [this] {
    app_id_ = client_->RegisterApplication("fuzz-app-" + std::to_string(index_));
    for (const FuzzOp& op : app_.ops) {
      // &op binds the scenario-owned vector element (not the loop slot),
      // and the scenario outlives the run.
      client_->sim()->ScheduleAt(op.at, [this, &op] { Execute(op); });  // ody_lint: owned-capture
    }
  });
}

void FuzzDriver::Execute(const FuzzOp& op) {
  if (stopped_) {
    return;
  }
  switch (op.kind) {
    case FuzzOpKind::kRequest:
      DoRequest(op.window_lo_frac, op.window_hi_frac);
      break;
    case FuzzOpKind::kCancel:
      DoCancel(op.variant);
      break;
    case FuzzOpKind::kTsop:
      DoTsop(op);
      break;
  }
}

void FuzzDriver::DoRequest(double lo_frac, double hi_frac) {
  const double level = client_->CurrentLevel(app_id_, ResourceId::kNetworkBandwidth);
  // Clamp the window to contain the current level: the generator's
  // fractions may invert around 1.0, and a denied request would stall
  // the upcall loop this request is meant to feed.
  const double lower = level * std::min(lo_frac, 0.95);
  const double upper = std::max(level * std::max(hi_frac, 1.05), lower + 1.0);
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = lower;
  descriptor.upper = upper;
  descriptor.handler = [this, lo_frac, hi_frac](RequestId id, ResourceId, double) {
    std::erase(outstanding_, id);
    if (!stopped_ && reregister_budget_ > 0) {
      --reregister_budget_;
      DoRequest(lo_frac, hi_frac);
    }
  };
  const RequestResult granted = client_->Request(app_id_, descriptor);
  if (granted.ok()) {
    ++result_->requests_granted;
    outstanding_.push_back(granted.id);
    oracle_->OnWindowRegistered(app_id_, granted.id, lower, upper);
  } else {
    ++result_->requests_denied;
    if (granted.admission.verdict == AdmissionVerdict::kRejected) {
      ++result_->admission_rejects;
    }
  }
}

void FuzzDriver::DoCancel(int variant) {
  if (outstanding_.empty()) {
    return;
  }
  const size_t index = static_cast<size_t>(variant) % outstanding_.size();
  const RequestId id = outstanding_[index];
  outstanding_.erase(outstanding_.begin() + static_cast<ptrdiff_t>(index));
  const Status status = client_->Cancel(id);
  if (status.ok()) {
    // A successful cancel proves no upcall was posted for this id, so
    // the oracle may flag any later delivery as upcall-after-cancel.
    ++result_->cancels_ok;
    oracle_->OnWindowCancelled(id);
  }
}

void FuzzDriver::DoTsop(const FuzzOp& op) {
  ++result_->tsops_issued;
  const auto discard = [](Status, std::string) {};
  switch (app_.warden) {
    case FuzzWardenKind::kVideo: {
      const std::string path = std::string(kOdysseyRoot) + "video/default";
      if (!opened_) {
        opened_ = true;
        client_->Tsop(app_id_, path, kVideoOpen, kDefaultMovie, discard);
        return;
      }
      switch (op.variant % 3) {
        case 0:
          client_->Tsop(app_id_, path, kVideoSetTrack,
                        PackStruct(VideoSetTrackRequest{op.variant % 4}), discard);
          return;
        case 1:
          client_->Tsop(
              app_id_, path, kVideoTakeFrame,
              PackStruct(VideoTakeFrameRequest{
                  static_cast<int>(op.magnitude * kVideoFramesPerTrial)}),
              discard);
          return;
        default:
          client_->Tsop(app_id_, path, kVideoStats, "", discard);
          return;
      }
    }
    case FuzzWardenKind::kWeb: {
      const std::string path = std::string(kOdysseyRoot) + "web/session";
      if (!opened_) {
        opened_ = true;
        client_->Tsop(app_id_, path, kWebOpen, kTestImageUrl, discard);
        return;
      }
      if (op.variant % 2 == 0) {
        client_->Tsop(app_id_, path, kWebSetFidelity,
                      PackStruct(WebSetFidelityRequest{op.variant % 4}), discard);
      } else {
        client_->Tsop(app_id_, path, kWebFetch, "", discard);
      }
      return;
    }
    case FuzzWardenKind::kSpeech: {
      const std::string path = std::string(kOdysseyRoot) + "speech/janus";
      if (op.variant % 3 == 0) {
        client_->Tsop(app_id_, path, kSpeechSetMode,
                      PackStruct(SpeechSetModeRequest{op.variant % 4}), discard);
      } else {
        SpeechUtterance utterance;
        // Degenerate zero-byte utterances are part of the vocabulary:
        // the warden must plan and answer them even at zero bandwidth.
        utterance.raw_bytes = op.magnitude < 0.15 ? 0.0 : op.magnitude * 40.0 * 1024.0;
        utterance.latency_goal_seconds = (op.variant % 2 == 1) ? 2.0 : 0.0;
        client_->Tsop(app_id_, path, kSpeechRecognize, PackStruct(utterance), discard);
      }
      return;
    }
    case FuzzWardenKind::kBitstream: {
      const std::string path = std::string(kOdysseyRoot) + "bitstream/stream";
      if (!streaming_) {
        streaming_ = true;
        BitstreamParams params;
        params.target_bps = (op.variant % 3 == 0) ? 0.0 : op.magnitude * 64.0 * 1024.0;
        params.window_bytes = 0.0;
        client_->Tsop(app_id_, path, kBitstreamStart, PackStruct(params), discard);
      } else {
        streaming_ = false;
        client_->Tsop(app_id_, path, kBitstreamStop, "", discard);
      }
      return;
    }
    case FuzzWardenKind::kFile: {
      const std::string path = std::string(kOdysseyRoot) + "files/doc/" +
                               std::to_string(op.variant % kFuzzFiles);
      switch (op.variant % 3) {
        case 0:
          client_->Tsop(app_id_, path, kFileSetConsistency,
                        PackStruct(FileSetConsistencyRequest{op.variant % 4}), discard);
          return;
        case 1:
          client_->Tsop(app_id_, path, kFileRead, "", discard);
          return;
        default:
          client_->Tsop(app_id_, path, kFileStats, "", discard);
          return;
      }
    }
    case FuzzWardenKind::kTelemetry: {
      const std::string path = std::string(kOdysseyRoot) + "telemetry/" + kFuzzFeed;
      if (!subscribed_) {
        subscribed_ = true;
        client_->Tsop(app_id_, path, kTelemetrySubscribe,
                      PackStruct(TelemetrySubscribeRequest{(op.variant % 4) - 1}), discard);
        return;
      }
      switch (op.variant % 3) {
        case 0:
          client_->Tsop(app_id_, path, kTelemetrySetLevel,
                        PackStruct(TelemetrySetLevelRequest{op.variant % 3}), discard);
          return;
        case 1:
          client_->Tsop(app_id_, path, kTelemetryStats, "", discard);
          return;
        default:
          subscribed_ = false;
          client_->Tsop(app_id_, path, kTelemetryUnsubscribe, "", discard);
          return;
      }
    }
  }
}

}  // namespace odyssey

// The trace-modulation daemon: feeds replay-trace parameters to a Link.
//
// This mirrors the user-level daemon of §6.1.2 that reads a replay trace and
// feeds model parameters to the in-kernel delay layer.  Transition listeners
// exist so that the blind-optimism strategy (§6.2.3) can be told the
// theoretical bandwidth at each network transition, exactly as the paper's
// modified viceroy was.

#ifndef SRC_NET_MODULATOR_H_
#define SRC_NET_MODULATOR_H_

#include <functional>
#include <vector>

#include "src/net/link.h"
#include "src/sim/simulation.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {

class Modulator {
 public:
  // Called at every trace transition with the segment that just took effect.
  using TransitionListener = std::function<void(const TraceSegment&)>;

  Modulator(Simulation* sim, Link* link);

  Modulator(const Modulator&) = delete;
  Modulator& operator=(const Modulator&) = delete;

  // Starts replaying |trace| from the current virtual time.  The first
  // segment takes effect immediately; after the trace ends the final
  // segment's parameters persist.
  void Replay(const ReplayTrace& trace);

  // Registers |listener| for future transitions (including the initial one
  // if registered before Replay()).
  void AddTransitionListener(TransitionListener listener);

  const ReplayTrace& trace() const { return trace_; }

  // Theoretical bandwidth at virtual time |t| relative to Replay() start.
  double TheoreticalBandwidthAt(Time t) const { return trace_.BandwidthAt(t - start_time_); }
  Time start_time() const { return start_time_; }

 private:
  void ApplySegment(size_t index);

  Simulation* sim_;
  Link* link_;
  ReplayTrace trace_;
  Time start_time_ = 0;
  std::vector<TransitionListener> listeners_;
  EventHandle next_transition_;
};

}  // namespace odyssey

#endif  // SRC_NET_MODULATOR_H_

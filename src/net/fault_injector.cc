#include "src/net/fault_injector.h"

#include <algorithm>

#include "src/trace/trace_macros.h"

namespace odyssey {

FaultInjector::FaultInjector(Simulation* sim, Link* link)
    : sim_(sim), link_(link), rng_(plan_.seed) {}

void FaultInjector::Arm(const FaultPlan& plan) {
  plan_ = plan;
  std::sort(plan_.drop_messages.begin(), plan_.drop_messages.end());
  rng_ = Rng(plan_.seed);
  messages_offered_ = 0;
  messages_dropped_ = 0;
  flows_killed_ = 0;

  for (const OutageWindow& outage : plan_.outages) {
    sim_->ScheduleAt(outage.start, [this] {
      if (++active_outages_ == 1) {
        ODY_TRACE_INSTANT(sim_->trace(), kFault, "outage_begin", sim_->now(), 0);
        link_->SetOutage(true);
      }
    });
    sim_->ScheduleAt(outage.start + outage.duration, [this] {
      if (--active_outages_ == 0) {
        ODY_TRACE_INSTANT(sim_->trace(), kFault, "outage_end", sim_->now(), 0);
        link_->SetOutage(false);
      }
    });
  }
  for (const LatencySpike& spike : plan_.latency_spikes) {
    sim_->ScheduleAt(spike.start, [this, extra = spike.extra] {
      active_latency_extra_ += extra;
      ODY_TRACE_INSTANT1(sim_->trace(), kFault, "latency_spike_begin", sim_->now(), 0,
                         "extra_us", static_cast<double>(extra));
      link_->SetExtraLatency(active_latency_extra_);
    });
    sim_->ScheduleAt(spike.start + spike.duration, [this, extra = spike.extra] {
      active_latency_extra_ -= extra;
      ODY_TRACE_INSTANT1(sim_->trace(), kFault, "latency_spike_end", sim_->now(), 0,
                         "extra_us", static_cast<double>(extra));
      link_->SetExtraLatency(active_latency_extra_);
    });
  }
  for (const Time at : plan_.flow_kills) {
    sim_->ScheduleAt(at, [this] { KillAllFlows(); });
  }
  // Server stalls need no scheduling: ServerStallExtra is evaluated against
  // the windows on each exchange.
}

bool FaultInjector::ShouldDropMessage() {
  const uint64_t index = ++messages_offered_;
  bool drop =
      std::binary_search(plan_.drop_messages.begin(), plan_.drop_messages.end(), index);
  if (!drop && plan_.drop_probability > 0.0) {
    // Always consume exactly one draw per offered message so the stream
    // stays aligned with the message sequence regardless of outcomes.
    drop = rng_.NextDouble() < plan_.drop_probability;
  }
  if (drop) {
    ++messages_dropped_;
    ODY_TRACE_INSTANT1(sim_->trace(), kFault, "message_drop", sim_->now(), 0, "message_index",
                       static_cast<double>(index));
  }
  return drop;
}

Duration FaultInjector::ServerStallExtra(Time now) const {
  Duration extra = 0;
  for (const ServerStall& stall : plan_.server_stalls) {
    if (now >= stall.start && now < stall.start + stall.duration) {
      extra += stall.extra_compute;
    }
  }
  return extra;
}

bool FaultInjector::InOutage(Time now) const {
  for (const OutageWindow& outage : plan_.outages) {
    if (now >= outage.start && now < outage.start + outage.duration) {
      return true;
    }
  }
  return false;
}

void FaultInjector::KillAllFlows() {
  // Snapshot first: CancelFlow mutates the flow set.
  const std::vector<FlowId> victims = link_->ActiveFlowIds();
  for (const FlowId id : victims) {
    link_->CancelFlow(id);
  }
  flows_killed_ += victims.size();
  ODY_TRACE_INSTANT1(sim_->trace(), kFault, "flow_kill", sim_->now(), 0, "flows",
                     static_cast<double>(victims.size()));
}

}  // namespace odyssey

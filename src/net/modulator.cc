#include "src/net/modulator.h"

#include <utility>

#include "src/trace/trace_macros.h"

namespace odyssey {

Modulator::Modulator(Simulation* sim, Link* link) : sim_(sim), link_(link) {}

void Modulator::Replay(const ReplayTrace& trace) {
  next_transition_.Cancel();
  trace_ = trace;
  start_time_ = sim_->now();
  if (!trace_.empty()) {
    ApplySegment(0);
  }
}

void Modulator::AddTransitionListener(TransitionListener listener) {
  listeners_.push_back(std::move(listener));
}

void Modulator::ApplySegment(size_t index) {
  const TraceSegment& segment = trace_.segments()[index];
  ODY_TRACE_INSTANT2(sim_->trace(), kNet, "link_transition", sim_->now(), index,
                     "bandwidth_bps", segment.bandwidth_bps, "latency_us",
                     static_cast<double>(segment.latency));
  link_->SetLatency(segment.latency);
  link_->SetCapacity(segment.bandwidth_bps);
  for (const auto& listener : listeners_) {
    listener(segment);
  }
  if (index + 1 < trace_.segments().size()) {
    next_transition_ =
        sim_->Schedule(segment.duration, [this, index] { ApplySegment(index + 1); });
  }
}

}  // namespace odyssey

// An emulated network link with time-varying capacity shared among flows.
//
// This is the simulation-level equivalent of the paper's trace-modulation
// layer: all traffic into and out of the mobile client is delayed according
// to a linear model combining latency and bandwidth-induced delay (§6.1.2).
// Concurrently active flows share the nominal capacity equally (processor
// sharing), which provides the bandwidth contention that the concurrency
// experiments (Figures 9 and 14) exercise.
//
// Latency is applied by callers per message (see rpc::Endpoint); the link
// models only the bandwidth-induced component and exposes the current
// latency parameter for them.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

using FlowId = uint64_t;

class Link {
 public:
  // |capacity_bps| is the nominal bandwidth in bytes/second; |latency| the
  // one-way latency applied per message by callers.
  Link(Simulation* sim, double capacity_bps, Duration latency);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Changes the nominal capacity, rescheduling in-flight flows.  A zero
  // capacity stalls all flows until capacity is restored (radio shadow).
  void SetCapacity(double capacity_bps);
  void SetLatency(Duration latency) { latency_ = latency; }

  // Fault-injection gate: while in outage the effective capacity is zero
  // regardless of the nominal capacity, so modulator transitions during the
  // outage are honored once it lifts.  Orthogonal to SetCapacity.
  void SetOutage(bool outage);
  bool in_outage() const { return outage_; }

  // Fault-injection latency excursion, added on top of the nominal latency
  // (negative extras clamp at zero total).
  void SetExtraLatency(Duration extra) { extra_latency_ = extra; }

  double capacity_bps() const { return capacity_bps_; }
  // Capacity actually serving flows right now (zero while in outage).
  double effective_capacity_bps() const { return outage_ ? 0.0 : capacity_bps_; }
  Duration latency() const {
    const Duration total = latency_ + extra_latency_;
    return total < 0 ? 0 : total;
  }
  size_t active_flow_count() const { return flows_.size() + zero_byte_flows_.size(); }

  // Ids of every flow currently in flight, for fault injection's
  // kill-all-flows primitive.
  std::vector<FlowId> ActiveFlowIds() const;

  // Instantaneous per-flow rate if one more flow were added; used only by
  // diagnostics.
  double FairShareRate() const;

  // Starts transferring |bytes| through the shared link.  |on_complete| fires
  // when the last byte clears the link.  Zero-byte flows complete after the
  // next event-loop turn.  Returns an id usable with CancelFlow().
  FlowId StartFlow(double bytes, std::function<void()> on_complete);

  // Abandons an in-flight flow; its completion callback never fires.
  // Unknown ids are ignored (the flow may have completed already).
  void CancelFlow(FlowId id);

  // Total bytes delivered over the lifetime of the link.
  double bytes_delivered() const { return bytes_delivered_; }

 private:
  struct Flow {
    double remaining = 0.0;
    std::function<void()> on_complete;
  };

  // Applies progress to all flows for time elapsed since |last_update_|.
  void Advance();
  // Completes any flows that have drained, then schedules the next
  // completion event.
  void CompleteAndReschedule();

  Simulation* sim_;
  double capacity_bps_;
  Duration latency_;
  Duration extra_latency_ = 0;
  bool outage_ = false;
  std::map<FlowId, Flow> flows_;
  // Degenerate zero-byte flows whose completion is already on the event
  // queue; tracked so CancelFlow can still suppress the callback.
  std::map<FlowId, EventHandle> zero_byte_flows_;
  FlowId next_id_ = 1;
  Time last_update_ = 0;
  EventHandle pending_completion_;
  double bytes_delivered_ = 0.0;
};

}  // namespace odyssey

#endif  // SRC_NET_LINK_H_

#include "src/net/link.h"

#include <limits>
#include <utility>
#include <vector>

#include "src/core/contract.h"

namespace odyssey {
namespace {

// Residual bytes below this are considered fully delivered; guards against
// floating-point dust keeping a flow alive forever.
constexpr double kEpsilonBytes = 1e-6;

}  // namespace

Link::Link(Simulation* sim, double capacity_bps, Duration latency)
    : sim_(sim), capacity_bps_(capacity_bps), latency_(latency), last_update_(sim->now()) {}

void Link::SetCapacity(double capacity_bps) {
  Advance();
  capacity_bps_ = capacity_bps < 0.0 ? 0.0 : capacity_bps;
  CompleteAndReschedule();
}

void Link::SetOutage(bool outage) {
  if (outage == outage_) {
    return;
  }
  Advance();
  outage_ = outage;
  CompleteAndReschedule();
}

double Link::FairShareRate() const {
  if (flows_.empty()) {
    return effective_capacity_bps();
  }
  return effective_capacity_bps() / static_cast<double>(flows_.size());
}

std::vector<FlowId> Link::ActiveFlowIds() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size() + zero_byte_flows_.size());
  for (const auto& [id, flow] : flows_) {
    ids.push_back(id);
  }
  for (const auto& [id, handle] : zero_byte_flows_) {
    ids.push_back(id);
  }
  return ids;
}

FlowId Link::StartFlow(double bytes, std::function<void()> on_complete) {
  // Byte accounting is non-negative end to end: flows are created with a
  // non-negative size and only ever drained (see Advance).
  ODY_ASSERT(bytes >= 0.0, "flow created with negative bytes");
  Advance();
  const FlowId id = next_id_++;
  if (bytes <= kEpsilonBytes) {
    // Degenerate flow: deliver on the next event-loop turn so the callback
    // never fires before StartFlow returns.  The handle is kept so that
    // CancelFlow honors its contract for zero-byte flows too.
    zero_byte_flows_[id] =
        sim_->Schedule(0, [this, id, cb = std::move(on_complete)] {
          zero_byte_flows_.erase(id);
          if (cb) {
            cb();
          }
        });
    return id;
  }
  flows_[id] = Flow{bytes, std::move(on_complete)};
  CompleteAndReschedule();
  return id;
}

void Link::CancelFlow(FlowId id) {
  const auto zit = zero_byte_flows_.find(id);
  if (zit != zero_byte_flows_.end()) {
    zit->second.Cancel();
    zero_byte_flows_.erase(zit);
    return;
  }
  Advance();
  flows_.erase(id);
  CompleteAndReschedule();
}

void Link::Advance() {
  const Time now = sim_->now();
  if (now == last_update_ || flows_.empty()) {
    last_update_ = now;
    return;
  }
  // Virtual time only moves forward, so the drained amount is non-negative
  // and every flow's residual stays in [0, initial bytes].
  ODY_DCHECK(now >= last_update_, "link advanced backwards in time");
  const double elapsed_s = DurationToSeconds(now - last_update_);
  const double rate = effective_capacity_bps() / static_cast<double>(flows_.size());
  const double progress = rate * elapsed_s;
  ODY_DCHECK(progress >= 0.0, "negative delivery progress");
  for (auto& [id, flow] : flows_) {
    const double delivered = progress < flow.remaining ? progress : flow.remaining;
    flow.remaining -= delivered;
    bytes_delivered_ += delivered;
    ODY_DCHECK(flow.remaining >= 0.0, "flow residual went negative");
  }
  last_update_ = now;
}

void Link::CompleteAndReschedule() {
  // Complete drained flows.  Callbacks may start new flows re-entrantly, so
  // collect them first.
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kEpsilonBytes) {
      done.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& cb : done) {
    if (cb) {
      cb();
    }
  }
  if (!done.empty()) {
    // Callbacks may have mutated the flow set; recompute from a clean slate.
    Advance();
  }

  pending_completion_.Cancel();
  if (flows_.empty() || effective_capacity_bps() <= 0.0) {
    return;  // stalled (radio shadow) or idle: wait for a capacity change
  }
  double min_remaining = std::numeric_limits<double>::max();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining < min_remaining) {
      min_remaining = flow.remaining;
    }
  }
  const double rate = effective_capacity_bps() / static_cast<double>(flows_.size());
  const Duration eta = SecondsToDuration(min_remaining / rate);
  pending_completion_ = sim_->Schedule(eta < 1 ? 1 : eta, [this] {
    Advance();
    CompleteAndReschedule();
  });
}

}  // namespace odyssey

#include "src/net/link.h"

#include <limits>
#include <utility>
#include <vector>

namespace odyssey {
namespace {

// Residual bytes below this are considered fully delivered; guards against
// floating-point dust keeping a flow alive forever.
constexpr double kEpsilonBytes = 1e-6;

}  // namespace

Link::Link(Simulation* sim, double capacity_bps, Duration latency)
    : sim_(sim), capacity_bps_(capacity_bps), latency_(latency), last_update_(sim->now()) {}

void Link::SetCapacity(double capacity_bps) {
  Advance();
  capacity_bps_ = capacity_bps < 0.0 ? 0.0 : capacity_bps;
  CompleteAndReschedule();
}

double Link::FairShareRate() const {
  if (flows_.empty()) {
    return capacity_bps_;
  }
  return capacity_bps_ / static_cast<double>(flows_.size());
}

FlowId Link::StartFlow(double bytes, std::function<void()> on_complete) {
  Advance();
  const FlowId id = next_id_++;
  if (bytes <= kEpsilonBytes) {
    // Degenerate flow: deliver on the next event-loop turn so the callback
    // never fires before StartFlow returns.
    sim_->Schedule(0, std::move(on_complete));
    return id;
  }
  flows_[id] = Flow{bytes, std::move(on_complete)};
  CompleteAndReschedule();
  return id;
}

void Link::CancelFlow(FlowId id) {
  Advance();
  flows_.erase(id);
  CompleteAndReschedule();
}

void Link::Advance() {
  const Time now = sim_->now();
  if (now == last_update_ || flows_.empty()) {
    last_update_ = now;
    return;
  }
  const double elapsed_s = DurationToSeconds(now - last_update_);
  const double rate = capacity_bps_ / static_cast<double>(flows_.size());
  const double progress = rate * elapsed_s;
  for (auto& [id, flow] : flows_) {
    const double delivered = progress < flow.remaining ? progress : flow.remaining;
    flow.remaining -= delivered;
    bytes_delivered_ += delivered;
  }
  last_update_ = now;
}

void Link::CompleteAndReschedule() {
  // Complete drained flows.  Callbacks may start new flows re-entrantly, so
  // collect them first.
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kEpsilonBytes) {
      done.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& cb : done) {
    if (cb) {
      cb();
    }
  }
  if (!done.empty()) {
    // Callbacks may have mutated the flow set; recompute from a clean slate.
    Advance();
  }

  pending_completion_.Cancel();
  if (flows_.empty() || capacity_bps_ <= 0.0) {
    return;  // stalled (radio shadow) or idle: wait for a capacity change
  }
  double min_remaining = std::numeric_limits<double>::max();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining < min_remaining) {
      min_remaining = flow.remaining;
    }
  }
  const double rate = capacity_bps_ / static_cast<double>(flows_.size());
  const Duration eta = SecondsToDuration(min_remaining / rate);
  pending_completion_ = sim_->Schedule(eta < 1 ? 1 : eta, [this] {
    Advance();
    CompleteAndReschedule();
  });
}

}  // namespace odyssey

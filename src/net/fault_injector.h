// Deterministic, seedable fault injection for the emulated network.
//
// The paper's central claim is agility when the network misbehaves, so the
// transport must be testable under loss, outage and stall — not only under
// the fair-weather waveforms of Figure 7.  A FaultPlan is a declarative
// schedule of faults; a FaultInjector arms a plan against a Link and exposes
// per-message hooks that rpc::Endpoint consults.  Every fault lives in
// virtual time on the event queue and every probabilistic decision draws
// from a generator seeded by the plan, so a failure scenario reproduces
// byte-for-byte from (plan, seed) — which is what makes the fault-matrix
// tests tractable.
//
// Composition is strictly additive: with no injector installed (or an empty
// plan armed) the Link and Endpoint happy paths are untouched.

#ifndef SRC_NET_FAULT_INJECTOR_H_
#define SRC_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/net/link.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

// A radio shadow: the link's effective capacity drops to zero for the
// window, then the nominal (modulator-controlled) capacity resumes.
struct OutageWindow {
  Time start = 0;
  Duration duration = 0;
};

// A latency excursion: |extra| is added to the link's one-way latency for
// the window (queueing delay, cell handoff, interference retransmissions).
struct LatencySpike {
  Time start = 0;
  Duration duration = 0;
  Duration extra = 0;
};

// A server brown-out: |extra_compute| is added to the server-side
// processing time of every exchange started inside the window.
struct ServerStall {
  Time start = 0;
  Duration duration = 0;
  Duration extra_compute = 0;
};

// A declarative fault schedule.  Times are absolute virtual times (relative
// to simulation start).  The builder methods return *this so plans compose
// fluently:
//
//   FaultPlan plan;
//   plan.WithSeed(7).WithDropProbability(0.3).WithOutage(10 * kSecond, 5 * kSecond);
struct FaultPlan {
  // Seed of the injector's private random stream (message drops, any future
  // probabilistic fault).  Independent of the Simulation seed so the same
  // fault schedule can be replayed against different trial seeds.
  uint64_t seed = 1;

  // Probability that any single RPC message (request, response, window
  // request, window payload, acknowledgement) is silently lost in transit.
  double drop_probability = 0.0;

  // Deterministic drops: global 1-based indices of messages to lose
  // regardless of drop_probability (message n is the n-th message offered
  // to the injector since Arm).  Lets unit tests lose exactly one leg.
  std::vector<uint64_t> drop_messages;

  std::vector<OutageWindow> outages;
  std::vector<LatencySpike> latency_spikes;
  std::vector<ServerStall> server_stalls;

  // Instants at which every in-flight flow on the link is killed
  // mid-transfer (base-station handoff dropping the queue).
  std::vector<Time> flow_kills;

  FaultPlan& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  FaultPlan& WithDropProbability(double p) {
    drop_probability = p;
    return *this;
  }
  FaultPlan& WithDroppedMessage(uint64_t index) {
    drop_messages.push_back(index);
    return *this;
  }
  FaultPlan& WithOutage(Time start, Duration duration) {
    outages.push_back(OutageWindow{start, duration});
    return *this;
  }
  FaultPlan& WithLatencySpike(Time start, Duration duration, Duration extra) {
    latency_spikes.push_back(LatencySpike{start, duration, extra});
    return *this;
  }
  FaultPlan& WithServerStall(Time start, Duration duration, Duration extra_compute) {
    server_stalls.push_back(ServerStall{start, duration, extra_compute});
    return *this;
  }
  FaultPlan& WithFlowKill(Time at) {
    flow_kills.push_back(at);
    return *this;
  }

  bool empty() const {
    return drop_probability <= 0.0 && drop_messages.empty() && outages.empty() &&
           latency_spikes.empty() && server_stalls.empty() && flow_kills.empty();
  }
};

class FaultInjector {
 public:
  FaultInjector(Simulation* sim, Link* link);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every fault in |plan| on the event queue and resets the
  // injector's random stream to plan.seed.  Arming replaces any previously
  // armed plan's probabilistic state but cannot unschedule windows that
  // were already queued; arm once per scenario.
  void Arm(const FaultPlan& plan);

  // --- Hooks consulted by rpc::Endpoint ---

  // Whether the next message offered to the network is lost.  Consumes one
  // draw from the injector's stream (and one message index), so the drop
  // pattern is a pure function of the plan and the message sequence.
  bool ShouldDropMessage();

  // Extra server-side compute for an exchange whose server work starts at
  // |now| (sum of all stall windows covering it).
  Duration ServerStallExtra(Time now) const;

  // --- Introspection (tests, diagnostics) ---

  const FaultPlan& plan() const { return plan_; }
  bool InOutage(Time now) const;
  uint64_t messages_offered() const { return messages_offered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t flows_killed() const { return flows_killed_; }

 private:
  void KillAllFlows();

  Simulation* sim_;
  Link* link_;
  FaultPlan plan_;
  Rng rng_;
  int active_outages_ = 0;
  Duration active_latency_extra_ = 0;
  uint64_t messages_offered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t flows_killed_ = 0;
};

}  // namespace odyssey

#endif  // SRC_NET_FAULT_INJECTOR_H_

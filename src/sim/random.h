// Deterministic pseudo-random number generation for simulation trials.
//
// The experiments in the paper report the mean and standard deviation of five
// trials.  Each trial here is seeded deterministically, so a figure reproduces
// bit-identically while still exhibiting trial-to-trial spread.  We implement
// SplitMix64 (for seeding) and xoshiro256++ (the workhorse generator) rather
// than relying on <random> engine internals, whose streams are not guaranteed
// to be identical across standard library implementations.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace odyssey {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256++ by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  // Constructs a generator whose stream is fully determined by |seed|.
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.Next();
    }
  }

  // Returns the next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n).  n must be positive.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's rejection-free-ish bounded generation with one retry loop.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<uint64_t>(m);
    if (low < n) {
      const uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Standard normal via Box-Muller (one value per call; simple and adequate
  // for jittering compute costs in trials).
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  // A multiplicative jitter factor centered on 1.0 and clamped to stay
  // positive; used to perturb modeled compute costs per trial.
  double JitterFactor(double relative_stddev) {
    const double f = Normal(1.0, relative_stddev);
    return f < 0.01 ? 0.01 : f;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_{};
};

}  // namespace odyssey

#endif  // SRC_SIM_RANDOM_H_

// The discrete-event simulation context shared by every Odyssey component.
//
// A Simulation owns the virtual clock and the event queue.  Components hold a
// Simulation* and schedule callbacks; the driver calls Run() (or RunUntil())
// to advance virtual time.  The whole system is single-threaded: the paper's
// viceroy and wardens run on cooperatively scheduled user-level threads in a
// single address space, which an event loop models faithfully and
// reproducibly.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace odyssey {

class TraceRecorder;

class Simulation {
 public:
  // |seed| determines the trial's random stream (compute-cost jitter etc.).
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time.
  Time now() const { return now_; }

  Rng& rng() { return rng_; }

  // Schedules |cb| to run after |delay| microseconds of virtual time.
  // Negative delays are clamped to zero (fire "now", after currently queued
  // same-time events).
  EventHandle Schedule(Duration delay, EventQueue::Callback cb) {
    if (delay < 0) {
      delay = 0;
    }
    return queue_.ScheduleAt(now_ + delay, std::move(cb));
  }

  // Schedules |cb| at absolute virtual time |when| (clamped to now).
  EventHandle ScheduleAt(Time when, EventQueue::Callback cb) {
    if (when < now_) {
      when = now_;
    }
    return queue_.ScheduleAt(when, std::move(cb));
  }

  // Fire-and-forget variants: same ordering as Schedule/ScheduleAt but no
  // cancellation handle, so the queue skips the handle bookkeeping.  Use
  // for events that always run (dispatch ticks, samplers).
  void Post(Duration delay, EventQueue::Callback cb) {
    if (delay < 0) {
      delay = 0;
    }
    queue_.PostAt(now_ + delay, std::move(cb));
  }

  void PostAt(Time when, EventQueue::Callback cb) {
    if (when < now_) {
      when = now_;
    }
    queue_.PostAt(when, std::move(cb));
  }

  // Runs events until the queue is empty.
  void Run() { RunUntil(std::numeric_limits<Time>::max()); }

  // Runs events with firing time <= |deadline|; afterwards now() ==
  // max(deadline, time reached), so periodic samplers see a consistent clock.
  void RunUntil(Time deadline) {
    Time when = 0;
    while (queue_.PeekTime(&when) && when <= deadline) {
      if (step_observer_) {
        step_observer_(when);
      }
      now_ = when;  // the clock reads the event's time inside its callback
      queue_.RunNext(&when);
      ++events_processed_;
    }
    if (deadline != std::numeric_limits<Time>::max() && now_ < deadline) {
      now_ = deadline;
    }
  }

  // Runs a single event if one exists; returns whether one ran.
  bool Step() {
    Time when = 0;
    if (!queue_.PeekTime(&when)) {
      return false;
    }
    if (step_observer_) {
      step_observer_(when);
    }
    now_ = when;
    if (!queue_.RunNext(&when)) {
      return false;
    }
    ++events_processed_;
    return true;
  }

  size_t pending_events() { return queue_.size(); }

  // Events fired so far — the numerator of the campaign's events/sec rate.
  uint64_t events_processed() const { return events_processed_; }

  // Allocates the next connection id for an Endpoint built on this
  // simulation.  Ids are per-simulation (not process-global) so that trials
  // are shared-nothing: a rig constructed from the same seed assigns the
  // same ids no matter how many other trials ran before it or on which
  // thread, which the campaign runner's jobs-invariance guarantee needs.
  // Starts at 1; 0 means "no connection".
  uint64_t NextConnectionId() { return next_connection_id_++; }

  // Opt-in tracing: when a recorder is installed, instrumented components
  // record events into it; when null (the default) every ODY_TRACE_* macro
  // reduces to a pointer test.  The recorder is borrowed, not owned.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

  // Opt-in step observation: called with each event's firing time just
  // before its callback runs, while now() still reads the previous event's
  // time.  Lets the fuzzing oracles audit clock monotonicity across every
  // event rather than at sampling points; unset (the default) costs one
  // branch per event.
  void set_step_observer(std::function<void(Time)> observer) {
    step_observer_ = std::move(observer);
  }

  // Opt-in same-timestamp audit (see EventQueue::set_tie_observer): reports
  // every consecutively fired pair of events that share a virtual
  // timestamp, so the fuzzing oracles can verify the deterministic
  // tie-break key orders them.  Unset (the default) costs one branch per
  // event.
  void set_tie_observer(EventQueue::TieObserver observer) {
    queue_.set_tie_observer(std::move(observer));
  }

#ifdef ODYSSEY_FUZZ_SELFTEST
  // Forwards the tie-break-removal self-test mutation to the event queue
  // (see EventQueue::set_selftest_lifo_ties).  Selftest builds only.
  void set_selftest_lifo_ties(bool enabled) { queue_.set_selftest_lifo_ties(enabled); }
#endif

 private:
  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
  TraceRecorder* trace_ = nullptr;
  std::function<void(Time)> step_observer_;
  uint64_t next_connection_id_ = 1;
  uint64_t events_processed_ = 0;
};

}  // namespace odyssey

#endif  // SRC_SIM_SIMULATION_H_

// Virtual-time primitives for the Odyssey simulation substrate.
//
// All simulated time in this repository is expressed as a signed 64-bit count
// of microseconds.  Using an integer representation keeps event ordering exact
// and runs bit-identical across platforms, which the reproduction experiments
// rely on (five seeded trials must be reproducible).

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace odyssey {

// A point in virtual time, in microseconds since simulation start.
using Time = int64_t;

// A span of virtual time, in microseconds.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;

// Converts a floating-point count of seconds to a Duration, rounding to the
// nearest microsecond.  Negative inputs are supported (for deltas).
constexpr Duration SecondsToDuration(double seconds) {
  return static_cast<Duration>(seconds * static_cast<double>(kSecond) +
                               (seconds >= 0 ? 0.5 : -0.5));
}

// Converts a Duration to floating-point seconds.
constexpr double DurationToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Converts a Duration to floating-point milliseconds.
constexpr double DurationToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace odyssey

#endif  // SRC_SIM_TIME_H_

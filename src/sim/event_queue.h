// A cancellable, stable-ordered event queue for discrete-event simulation.
//
// Events scheduled for the same virtual time fire in scheduling order
// (FIFO), which keeps simulations deterministic.  Cancellation is O(1):
// the heap entry is tombstoned and skipped on pop.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/core/contract.h"
#include "src/sim/time.h"

namespace odyssey {

// A handle that can cancel a pending event.  Copyable; all copies refer to
// the same underlying event.  Cancelling an already-fired or already-
// cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }

  // Prevents the event from firing.  Safe to call at any point.
  void Cancel() {
    if (state_) {
      *state_ = true;
    }
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}

  std::shared_ptr<bool> state_;  // true == cancelled-or-fired
};

// Min-heap of (time, sequence) -> callback.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules |cb| to fire at absolute virtual time |when|.
  EventHandle ScheduleAt(Time when, Callback cb) {
    auto state = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, state, std::move(cb)});
    return EventHandle(std::move(state));
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest live event.  Skips tombstones.  Requires !empty()
  // after tombstone compaction; returns false if no live event remains.
  bool PeekTime(Time* when) {
    Compact();
    if (heap_.empty()) {
      return false;
    }
    *when = heap_.top().when;
    return true;
  }

  // Pops and runs the earliest live event, storing its time in |when|.
  // Returns false if no live event remains.
  bool RunNext(Time* when) {
    Compact();
    if (heap_.empty()) {
      return false;
    }
    Entry entry = heap_.top();
    heap_.pop();
    // Virtual time is monotone: the heap must never yield an event earlier
    // than one it already fired (determinism depends on this ordering).
    ODY_ASSERT(entry.when >= last_fired_, "event queue time went backwards");
    last_fired_ = entry.when;
    *entry.cancelled = true;  // marks as fired; further Cancel() is a no-op
    *when = entry.when;
    entry.cb();
    return true;
  }

 private:
  struct Entry {
    Time when;
    uint64_t seq;
    std::shared_ptr<bool> cancelled;
    Callback cb;

    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void Compact() {
    while (!heap_.empty() && *heap_.top().cancelled) {
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  uint64_t next_seq_ = 0;
  Time last_fired_ = 0;
};

}  // namespace odyssey

#endif  // SRC_SIM_EVENT_QUEUE_H_

// A cancellable, stable-ordered event queue for discrete-event simulation.
//
// Events scheduled for the same virtual time fire in scheduling order
// (FIFO), which keeps simulations deterministic.  The heap is hand-rolled
// and *indexable*: each cancellable entry carries a back-pointer slot that
// tracks the entry's heap position, so Cancel() physically removes the
// entry in O(log N) instead of tombstoning it.  At 100k+ connections the
// workload is dominated by schedule-then-cancel churn (every granted
// window-of-tolerance request schedules a timeout it usually cancels);
// tombstones would keep all of that dead weight in the heap, growing it
// without bound and taxing every push and pop with the deeper tree.
//
// Pop order is fully determined by the total order (when, seq), so the
// switch from the tombstoned std::priority_queue changes no observable
// event sequence — only the cost of maintaining it.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/contract.h"
#include "src/sim/time.h"

namespace odyssey {

class EventQueue;

// A handle that can cancel a pending event.  Copyable; all copies refer to
// the same underlying event.  Cancelling an already-fired or already-
// cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  inline bool pending() const;

  // Prevents the event from firing.  Safe to call at any point.
  inline void Cancel();

 private:
  friend class EventQueue;

  // Back-pointer record shared between a handle and its heap entry.  While
  // the event is pending, |queue| is set and |index| is the entry's current
  // heap position (updated on every sift).  Firing, cancellation, or queue
  // destruction null |queue|, detaching all outstanding handles.
  struct Slot {
    EventQueue* queue = nullptr;
    size_t index = 0;
  };

  explicit EventHandle(std::shared_ptr<Slot> slot) : slot_(std::move(slot)) {}

  std::shared_ptr<Slot> slot_;
};

// Min-heap of (time, sequence) -> callback.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    for (Entry& entry : heap_) {
      if (entry.slot) {
        entry.slot->queue = nullptr;
      }
    }
  }

  // Schedules |cb| to fire at absolute virtual time |when|.
  EventHandle ScheduleAt(Time when, Callback cb) {
    auto slot = std::make_shared<EventHandle::Slot>();
    slot->queue = this;
    Push(Entry{when, next_seq_++, slot, std::move(cb)});
    return EventHandle(std::move(slot));
  }

  // Schedules |cb| with no cancellation handle.  Skips the slot allocation
  // and per-sift index maintenance — the fast path for fire-and-forget
  // events (batched upcall dispatch, periodic samplers).
  void PostAt(Time when, Callback cb) {
    Push(Entry{when, next_seq_++, nullptr, std::move(cb)});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Same-timestamp determinism audit (DESIGN.md §13).  Everything the
  // simulation does at one virtual instant — batched upcall dispatch, a
  // waveform transition and the re-evaluation it triggers, N apps reacting
  // to one supply step — is a set of events at an identical timestamp, and
  // the whole determinism story rests on the tie-break key (when, seq)
  // ordering that set totally and reproducibly.  When an observer is
  // installed, RunNext reports every consecutively fired same-timestamp
  // pair as (when, previous seq, fired seq); the auditor (the fuzzer's
  // same-time-order oracle) verifies previous < fired, i.e. that ties pop
  // in scheduling order.  Unset, the audit costs one branch per pop.
  using TieObserver = std::function<void(Time when, uint64_t prev_seq, uint64_t seq)>;
  void set_tie_observer(TieObserver observer) { tie_observer_ = std::move(observer); }

#ifdef ODYSSEY_FUZZ_SELFTEST
  // Seeded mutation for the oracle pipeline's self-test: drops the
  // deterministic tie-break by popping same-timestamp events newest-first
  // (LIFO) instead of in scheduling order.  Still a total order — the run
  // stays reproducible — but the same-time-order oracle must catch it and
  // the shrinker must minimize the scenario around it.  Compiled only
  // under -DODYSSEY_FUZZ_SELFTEST; release builds carry no mutation code.
  void set_selftest_lifo_ties(bool enabled) { selftest_lifo_ties_ = enabled; }
#endif

  // Time of the earliest event; false if the queue is empty.
  bool PeekTime(Time* when) {
    if (heap_.empty()) {
      return false;
    }
    *when = heap_[0].when;
    return true;
  }

  // Pops and runs the earliest event, storing its time in |when|.
  // Returns false if the queue is empty.
  bool RunNext(Time* when) {
    if (heap_.empty()) {
      return false;
    }
    Entry entry = std::move(heap_[0]);
    if (entry.slot) {
      entry.slot->queue = nullptr;  // fired; further Cancel() is a no-op
    }
    RemoveAt(0);
    // Virtual time is monotone: the heap must never yield an event earlier
    // than one it already fired (determinism depends on this ordering).
    ODY_ASSERT(entry.when >= last_fired_, "event queue time went backwards");
    if (tie_observer_ && have_fired_ && entry.when == last_fired_) {
      tie_observer_(entry.when, last_fired_seq_, entry.seq);
    }
    last_fired_ = entry.when;
    last_fired_seq_ = entry.seq;
    have_fired_ = true;
    *when = entry.when;
    entry.cb();
    return true;
  }

 private:
  friend class EventHandle;

  struct Entry {
    Time when;
    uint64_t seq;
    std::shared_ptr<EventHandle::Slot> slot;
    Callback cb;

    bool Before(const Entry& other, bool lifo_ties) const {
      if (when != other.when) {
        return when < other.when;
      }
      return lifo_ties ? seq > other.seq : seq < other.seq;
    }
  };

  bool Before(const Entry& a, const Entry& b) const {
#ifdef ODYSSEY_FUZZ_SELFTEST
    return a.Before(b, selftest_lifo_ties_);
#else
    return a.Before(b, false);
#endif
  }

  void Push(Entry entry) {
    heap_.push_back(std::move(entry));
    SiftUp(heap_.size() - 1);
  }

  // Removes the entry at |index| (which must be valid): the last entry
  // takes its place and sifts to wherever the heap property wants it.
  void RemoveAt(size_t index) {
    const size_t last = heap_.size() - 1;
    if (index != last) {
      heap_[index] = std::move(heap_[last]);
      heap_.pop_back();
      // The displaced entry may beat its new parent or lose to a child.
      SiftUp(index);
      SiftDown(index);
    } else {
      heap_.pop_back();
    }
  }

  void SiftUp(size_t index) {
    while (index > 0) {
      const size_t parent = (index - 1) / 2;
      if (!Before(heap_[index], heap_[parent])) {
        break;
      }
      SwapEntries(index, parent);
      index = parent;
    }
    Reindex(index);
  }

  void SiftDown(size_t index) {
    const size_t n = heap_.size();
    for (;;) {
      const size_t left = 2 * index + 1;
      if (left >= n) {
        break;
      }
      size_t best = left;
      const size_t right = left + 1;
      if (right < n && Before(heap_[right], heap_[left])) {
        best = right;
      }
      if (!Before(heap_[best], heap_[index])) {
        break;
      }
      SwapEntries(index, best);
      index = best;
    }
    Reindex(index);
  }

  void SwapEntries(size_t a, size_t b) {
    std::swap(heap_[a], heap_[b]);
    Reindex(a);
    Reindex(b);
  }

  void Reindex(size_t index) {
    if (index < heap_.size() && heap_[index].slot) {
      heap_[index].slot->index = index;
    }
  }

  // Cancellation entry point, reached through EventHandle::Cancel().
  void Remove(size_t index) {
    ODY_ASSERT(index < heap_.size(), "event handle index out of range");
    if (heap_[index].slot) {
      heap_[index].slot->queue = nullptr;
    }
    RemoveAt(index);
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
  Time last_fired_ = 0;
  uint64_t last_fired_seq_ = 0;
  bool have_fired_ = false;
  TieObserver tie_observer_;
#ifdef ODYSSEY_FUZZ_SELFTEST
  bool selftest_lifo_ties_ = false;
#endif
};

inline bool EventHandle::pending() const { return slot_ && slot_->queue != nullptr; }

inline void EventHandle::Cancel() {
  if (slot_ && slot_->queue != nullptr) {
    slot_->queue->Remove(slot_->index);
  }
}

}  // namespace odyssey

#endif  // SRC_SIM_EVENT_QUEUE_H_

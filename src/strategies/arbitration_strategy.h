// ArbitrationStrategy: the admission-control face of a bandwidth strategy.
//
// The paper's viceroy admits every window of tolerance and lets upcalls do
// the arbitration after the fact.  A strategy that implements this
// interface participates *before* registration: the viceroy consults
// DecideAdmission() for each bandwidth window that passes the Figure 3
// level check, and only registers the window when the verdict is not
// kRejected.  The window-lifecycle hooks keep the strategy's commitment
// bookkeeping in step with the request table:
//
//   * OnWindowRegistered — the window was entered into the request table
//     under |id|; an admission-controlling strategy records the
//     commitment (the window's lower bound) it implicitly made.
//   * OnWindowCancelled  — the application withdrew the window.
//   * OnWindowConsumed   — the viceroy took the window out of the table to
//     deliver an upcall (windows of tolerance are one-shot, §4.2); any
//     commitment is released, because the application must re-register.
//
// The contract the conformance kit enforces: exactly one DecideAdmission()
// call per registration attempt that passes the level check; a rejected
// attempt registers nothing and delivers no upcalls; decisions are a pure
// function of observed history, never wall-clock.

#ifndef SRC_STRATEGIES_ARBITRATION_STRATEGY_H_
#define SRC_STRATEGIES_ARBITRATION_STRATEGY_H_

#include "src/core/bandwidth_strategy.h"
#include "src/core/resource.h"
#include "src/sim/time.h"

namespace odyssey {

class ArbitrationStrategy : public BandwidthStrategy {
 public:
  // Decides the fate of a bandwidth window |descriptor| proposed by |app|
  // at |now|.  kAdmitted and kDegraded both let the registration proceed;
  // kRejected refuses it (the caller reports the decision to the
  // application and registers nothing).
  virtual AdmissionDecision DecideAdmission(AppId app, const ResourceDescriptor& descriptor,
                                            Time now) = 0;

  // Window-lifecycle notifications (see file comment).  |id| values for
  // resources other than bandwidth may also be reported; strategies ignore
  // ids they never admitted.
  virtual void OnWindowRegistered(AppId app, RequestId id, const ResourceDescriptor& descriptor) {
    (void)app;
    (void)id;
    (void)descriptor;
  }
  virtual void OnWindowCancelled(RequestId id) { (void)id; }
  virtual void OnWindowConsumed(RequestId id) { (void)id; }

  ArbitrationStrategy* arbitration() override { return this; }
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_ARBITRATION_STRATEGY_H_

#include "src/strategies/centralized.h"

namespace odyssey {

CentralizedStrategy::CentralizedStrategy(Simulation* sim, const SupplyModelConfig& config)
    : sim_(sim), model_(config) {}

CentralizedStrategy::~CentralizedStrategy() {
  for (auto& [connection, endpoint] : endpoints_) {
    endpoint->log().RemoveListener(this);
  }
}

void CentralizedStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  model_.AddConnection(endpoint->id());
  owner_[endpoint->id()] = app;
  endpoints_[endpoint->id()] = endpoint;
  endpoint->log().AddListener(this);
}

void CentralizedStrategy::DetachConnection(Endpoint* endpoint) {
  endpoint->log().RemoveListener(this);
  model_.RemoveConnection(endpoint->id());
  owner_.erase(endpoint->id());
  endpoints_.erase(endpoint->id());
}

double CentralizedStrategy::AvailabilityFor(AppId app, Time now) const {
  double total = 0.0;
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      total += model_.AvailabilityFor(connection, now);
    }
  }
  return total;
}

double CentralizedStrategy::TotalSupply(Time now) const {
  (void)now;
  return model_.TotalSupply();
}

Duration CentralizedStrategy::SmoothedRttFor(AppId app) const {
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      const ConnectionEstimator* estimator = model_.EstimatorFor(connection);
      if (estimator != nullptr) {
        return estimator->smoothed_rtt();
      }
    }
  }
  return 0;
}

void CentralizedStrategy::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  model_.OnRoundTrip(connection, obs);
  NotifyChanged();
}

void CentralizedStrategy::OnThroughput(ConnectionId connection, const ThroughputObservation& obs) {
  model_.OnThroughput(connection, obs);
  NotifyChanged();
}

void CentralizedStrategy::OnFailure(ConnectionId connection, const FailureObservation& obs) {
  model_.OnFailure(connection, obs);
  NotifyChanged();
}

double CentralizedStrategy::ConnectionAvailability(ConnectionId connection, Time now) const {
  return model_.AvailabilityFor(connection, now);
}

}  // namespace odyssey

#include "src/strategies/centralized.h"

#include <algorithm>
#include <utility>

#include "src/core/contract.h"
#include "src/trace/trace_macros.h"

namespace odyssey {
namespace {

// Estimator state is sampled after each observation folds in, so the trace
// shows the EWMA inputs (the observation) next to its outputs (the
// smoothed series) at the same sim time.
void TraceEstimatorState(Simulation* sim, const SupplyModelInterface& model,
                         ConnectionId connection) {
  const ConnectionEstimator* estimator = model.EstimatorFor(connection);
  if (estimator == nullptr) {
    return;
  }
  ODY_TRACE_COUNTER(sim->trace(), kEstimator, "rtt_us", sim->now(), connection,
                    static_cast<double>(estimator->smoothed_rtt()));
  ODY_TRACE_COUNTER(sim->trace(), kEstimator, "bandwidth_bps", sim->now(), connection,
                    estimator->bandwidth_bps());
  ODY_TRACE_COUNTER(sim->trace(), kEstimator, "supply_bps", sim->now(), 0, model.TotalSupply());
}

}  // namespace

CentralizedStrategy::CentralizedStrategy(Simulation* sim, const SupplyModelConfig& config,
                                         SupplyModelKind kind)
    : sim_(sim), model_(MakeSupplyModel(kind, config)) {
  if (kind == SupplyModelKind::kIncremental) {
    fast_model_ = static_cast<SupplyModel*>(model_.get());
  }
}

CentralizedStrategy::CentralizedStrategy(Simulation* sim,
                                         std::unique_ptr<SupplyModelInterface> model)
    : sim_(sim), model_(std::move(model)) {}

CentralizedStrategy::~CentralizedStrategy() {
  for (auto& [connection, endpoint] : endpoints_) {
    endpoint->log().RemoveListener(this);
  }
}

void CentralizedStrategy::BumpCount(int from, int to) {
  if (from > 0) {
    const auto it = apps_by_count_.find(from);
    if (--it->second == 0) {
      apps_by_count_.erase(it);
    }
  }
  if (to > 0) {
    ++apps_by_count_[to];
  }
}

void CentralizedStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  model_->AddConnection(endpoint->id());
  owner_[endpoint->id()] = app;
  endpoints_[endpoint->id()] = endpoint;
  std::vector<ConnectionId>& conns = app_connections_[app];
  const int before = static_cast<int>(conns.size());
  conns.insert(std::lower_bound(conns.begin(), conns.end(), endpoint->id()), endpoint->id());
  BumpCount(before, before + 1);
  rtt_dirty_.insert(app);
  endpoint->log().AddListener(this);
}

void CentralizedStrategy::DetachConnection(Endpoint* endpoint) {
  endpoint->log().RemoveListener(this);
  model_->RemoveConnection(endpoint->id());
  const auto owner_it = owner_.find(endpoint->id());
  if (owner_it != owner_.end()) {
    const AppId app = owner_it->second;
    const auto app_it = app_connections_.find(app);
    std::vector<ConnectionId>& conns = app_it->second;
    conns.erase(std::find(conns.begin(), conns.end(), endpoint->id()));
    BumpCount(static_cast<int>(conns.size()) + 1, static_cast<int>(conns.size()));
    if (conns.empty()) {
      app_connections_.erase(app_it);
    }
    rtt_dirty_.insert(app);
    owner_.erase(owner_it);
  }
  endpoints_.erase(endpoint->id());
}

double CentralizedStrategy::AvailabilityFor(AppId app, Time now) const {
  double total = 0.0;
  const auto it = app_connections_.find(app);
  if (it == app_connections_.end()) {
    return total;
  }
  for (const ConnectionId connection : it->second) {
    total += model_->AvailabilityFor(connection, now);
  }
  return total;
}

double CentralizedStrategy::TotalSupply(Time now) const {
  (void)now;
  return model_->TotalSupply();
}

Duration CentralizedStrategy::SmoothedRttFor(AppId app) const {
  const auto it = app_connections_.find(app);
  if (it == app_connections_.end()) {
    return 0;
  }
  for (const ConnectionId connection : it->second) {
    const ConnectionEstimator* estimator = model_->EstimatorFor(connection);
    if (estimator != nullptr) {
      return estimator->smoothed_rtt();
    }
  }
  return 0;
}

int CentralizedStrategy::ConnectionCountFor(AppId app) const {
  const auto it = app_connections_.find(app);
  return it == app_connections_.end() ? 0 : static_cast<int>(it->second.size());
}

AppId CentralizedStrategy::OwnerOf(ConnectionId connection) const {
  const auto it = owner_.find(connection);
  return it == owner_.end() ? 0 : it->second;
}

ReevalHint CentralizedStrategy::TakeReevalHint(Time now) {
  ReevalHint hint;
  hint.exact = fast_model_ != nullptr;

  // Dirty: owners of connections with (possibly) unexpired usage, plus
  // every app whose rtt or connection set changed since the last hint.
  std::vector<ConnectionId> live;
  model_->CollectLiveConnections(now, &live);
  for (const ConnectionId connection : live) {
    const auto it = owner_.find(connection);
    if (it != owner_.end()) {
      hint.dirty.push_back(it->second);
    }
  }
  hint.dirty.insert(hint.dirty.end(), rtt_dirty_.begin(), rtt_dirty_.end());
  rtt_dirty_.clear();
  std::sort(hint.dirty.begin(), hint.dirty.end());
  hint.dirty.erase(std::unique(hint.dirty.begin(), hint.dirty.end()), hint.dirty.end());
  if (!hint.exact) {
    return hint;
  }

  // Every connection of a non-dirty app is idle, so each contributes the
  // fair share of a not-currently-active connection — the same value the
  // model reports for an unknown connection (connection ids start at 1, so
  // 0 never names a real one).  Folding it in k times reproduces, addition
  // for addition, the sum AvailabilityFor(app) computes for such an app.
  const double unit = model_->AvailabilityFor(0, now);
  double level = 0.0;
  int folded = 0;
  for (const auto& [count, napps] : apps_by_count_) {
    (void)napps;
    for (; folded < count; ++folded) {
      level += unit;
    }
    hint.idle_levels.emplace_back(count, level);
  }
  return hint;
}

void CentralizedStrategy::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  ODY_TRACE_INSTANT1(sim_->trace(), kEstimator, "rtt_obs", sim_->now(), connection, "rtt_us",
                     static_cast<double>(obs.rtt));
  model_->OnRoundTrip(connection, obs);
  const auto it = owner_.find(connection);
  if (it != owner_.end()) {
    rtt_dirty_.insert(it->second);
  }
  TraceEstimatorState(sim_, *model_, connection);
  NotifyChanged();
}

void CentralizedStrategy::OnThroughput(ConnectionId connection, const ThroughputObservation& obs) {
  ODY_TRACE_INSTANT2(sim_->trace(), kEstimator, "throughput_obs", sim_->now(), connection,
                     "window_bytes", static_cast<double>(obs.window_bytes), "elapsed_us",
                     static_cast<double>(obs.elapsed));
  model_->OnThroughput(connection, obs);
  TraceEstimatorState(sim_, *model_, connection);
  NotifyChanged();
}

void CentralizedStrategy::OnFailure(ConnectionId connection, const FailureObservation& obs) {
  ODY_TRACE_INSTANT1(sim_->trace(), kEstimator, "failure_obs", sim_->now(), connection,
                     "attempts", static_cast<double>(obs.attempts));
  model_->OnFailure(connection, obs);
  TraceEstimatorState(sim_, *model_, connection);
  NotifyChanged();
}

double CentralizedStrategy::ConnectionAvailability(ConnectionId connection, Time now) const {
  return model_->AvailabilityFor(connection, now);
}

std::vector<ConnectionId> CentralizedStrategy::AttachedConnections() const {
  std::vector<ConnectionId> out;
  out.reserve(endpoints_.size());
  for (const auto& [connection, endpoint] : endpoints_) {
    out.push_back(connection);
  }
  return out;
}

}  // namespace odyssey

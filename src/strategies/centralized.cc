#include "src/strategies/centralized.h"

#include "src/trace/trace_macros.h"

namespace odyssey {
namespace {

// Estimator state is sampled after each observation folds in, so the trace
// shows the EWMA inputs (the observation) next to its outputs (the
// smoothed series) at the same sim time.
void TraceEstimatorState(Simulation* sim, const SupplyModel& model, ConnectionId connection) {
  const ConnectionEstimator* estimator = model.EstimatorFor(connection);
  if (estimator == nullptr) {
    return;
  }
  ODY_TRACE_COUNTER(sim->trace(), kEstimator, "rtt_us", sim->now(), connection,
                    static_cast<double>(estimator->smoothed_rtt()));
  ODY_TRACE_COUNTER(sim->trace(), kEstimator, "bandwidth_bps", sim->now(), connection,
                    estimator->bandwidth_bps());
  ODY_TRACE_COUNTER(sim->trace(), kEstimator, "supply_bps", sim->now(), 0, model.TotalSupply());
}

}  // namespace

CentralizedStrategy::CentralizedStrategy(Simulation* sim, const SupplyModelConfig& config)
    : sim_(sim), model_(config) {}

CentralizedStrategy::~CentralizedStrategy() {
  for (auto& [connection, endpoint] : endpoints_) {
    endpoint->log().RemoveListener(this);
  }
}

void CentralizedStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  model_.AddConnection(endpoint->id());
  owner_[endpoint->id()] = app;
  endpoints_[endpoint->id()] = endpoint;
  endpoint->log().AddListener(this);
}

void CentralizedStrategy::DetachConnection(Endpoint* endpoint) {
  endpoint->log().RemoveListener(this);
  model_.RemoveConnection(endpoint->id());
  owner_.erase(endpoint->id());
  endpoints_.erase(endpoint->id());
}

double CentralizedStrategy::AvailabilityFor(AppId app, Time now) const {
  double total = 0.0;
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      total += model_.AvailabilityFor(connection, now);
    }
  }
  return total;
}

double CentralizedStrategy::TotalSupply(Time now) const {
  (void)now;
  return model_.TotalSupply();
}

Duration CentralizedStrategy::SmoothedRttFor(AppId app) const {
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      const ConnectionEstimator* estimator = model_.EstimatorFor(connection);
      if (estimator != nullptr) {
        return estimator->smoothed_rtt();
      }
    }
  }
  return 0;
}

void CentralizedStrategy::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  ODY_TRACE_INSTANT1(sim_->trace(), kEstimator, "rtt_obs", sim_->now(), connection, "rtt_us",
                     static_cast<double>(obs.rtt));
  model_.OnRoundTrip(connection, obs);
  TraceEstimatorState(sim_, model_, connection);
  NotifyChanged();
}

void CentralizedStrategy::OnThroughput(ConnectionId connection, const ThroughputObservation& obs) {
  ODY_TRACE_INSTANT2(sim_->trace(), kEstimator, "throughput_obs", sim_->now(), connection,
                     "window_bytes", static_cast<double>(obs.window_bytes), "elapsed_us",
                     static_cast<double>(obs.elapsed));
  model_.OnThroughput(connection, obs);
  TraceEstimatorState(sim_, model_, connection);
  NotifyChanged();
}

void CentralizedStrategy::OnFailure(ConnectionId connection, const FailureObservation& obs) {
  ODY_TRACE_INSTANT1(sim_->trace(), kEstimator, "failure_obs", sim_->now(), connection,
                     "attempts", static_cast<double>(obs.attempts));
  model_.OnFailure(connection, obs);
  TraceEstimatorState(sim_, model_, connection);
  NotifyChanged();
}

double CentralizedStrategy::ConnectionAvailability(ConnectionId connection, Time now) const {
  return model_.AvailabilityFor(connection, now);
}

std::vector<ConnectionId> CentralizedStrategy::AttachedConnections() const {
  std::vector<ConnectionId> out;
  out.reserve(endpoints_.size());
  for (const auto& [connection, endpoint] : endpoints_) {
    out.push_back(connection);
  }
  return out;
}

}  // namespace odyssey

// Odyssey's centralized bandwidth management (§6.2.1).
//
// Subscribes to every attached endpoint's observation log, feeds a
// SupplyModel, and reports per-application availability as the sum of the
// application's per-connection shares (fair-share floor plus competed-for
// part proportional to recent use).

#ifndef SRC_STRATEGIES_CENTRALIZED_H_
#define SRC_STRATEGIES_CENTRALIZED_H_

#include <map>
#include <vector>

#include "src/core/bandwidth_strategy.h"
#include "src/estimator/supply_model.h"
#include "src/rpc/observation_log.h"
#include "src/sim/simulation.h"

namespace odyssey {

class CentralizedStrategy : public BandwidthStrategy, public LogListener {
 public:
  explicit CentralizedStrategy(Simulation* sim, const SupplyModelConfig& config = {});
  ~CentralizedStrategy() override;

  // BandwidthStrategy:
  std::string name() const override { return "odyssey"; }
  void AttachConnection(AppId app, Endpoint* endpoint) override;
  void DetachConnection(Endpoint* endpoint) override;
  double AvailabilityFor(AppId app, Time now) const override;
  bool HasEstimate() const override { return model_.has_supply(); }
  double TotalSupply(Time now) const override;
  Duration SmoothedRttFor(AppId app) const override;

  // LogListener:
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override;
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override;
  void OnFailure(ConnectionId connection, const FailureObservation& obs) override;

  // Share estimate for one connection (Figure 9's lower curve).
  double ConnectionAvailability(ConnectionId connection, Time now) const;

  // Every currently attached connection, in id order.  The fuzzing oracles
  // iterate these to audit the fair-share lower bound per connection.
  std::vector<ConnectionId> AttachedConnections() const;

  const SupplyModel& supply_model() const { return model_; }

 private:
  Simulation* sim_;
  SupplyModel model_;
  std::map<ConnectionId, AppId> owner_;          // connection -> app
  std::map<ConnectionId, Endpoint*> endpoints_;  // for detach
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_CENTRALIZED_H_

// Odyssey's centralized bandwidth management (§6.2.1).
//
// Subscribes to every attached endpoint's observation log, feeds a
// SupplyModel, and reports per-application availability as the sum of the
// application's per-connection shares (fair-share floor plus competed-for
// part proportional to recent use).
//
// The strategy also keeps the incremental bookkeeping behind the viceroy's
// indexed re-evaluation (TakeReevalHint): per-app connection lists, a
// histogram of apps by connection count, and a set of apps whose rtt may
// have moved since the last hint.  An app none of whose connections has
// recent usage or a fresh rtt sample sees availability of exactly
// (connection count) x (idle fair share) — the hint reports those idle
// levels so the viceroy can probe the request table's interval index
// instead of re-deriving every app's availability.

#ifndef SRC_STRATEGIES_CENTRALIZED_H_
#define SRC_STRATEGIES_CENTRALIZED_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/core/bandwidth_strategy.h"
#include "src/estimator/supply_model.h"
#include "src/rpc/observation_log.h"
#include "src/sim/simulation.h"

namespace odyssey {

class CentralizedStrategy : public BandwidthStrategy, public LogListener {
 public:
  // |kind| selects the supply-model implementation; kNaive exists for the
  // differential tests' reference stack and yields inexact re-evaluation
  // hints (forcing the viceroy's full scan).
  explicit CentralizedStrategy(Simulation* sim, const SupplyModelConfig& config = {},
                               SupplyModelKind kind = SupplyModelKind::kIncremental);
  // Injects a caller-built supply model (e.g. the fleet-aggregated model
  // from src/fleet).  Hints are inexact for injected models, so the viceroy
  // falls back to its full-scan re-evaluation for candidate discovery.
  CentralizedStrategy(Simulation* sim, std::unique_ptr<SupplyModelInterface> model);
  ~CentralizedStrategy() override;

  // BandwidthStrategy:
  std::string name() const override { return "odyssey"; }
  void AttachConnection(AppId app, Endpoint* endpoint) override;
  void DetachConnection(Endpoint* endpoint) override;
  double AvailabilityFor(AppId app, Time now) const override;
  bool HasEstimate() const override { return model_->has_supply(); }
  double TotalSupply(Time now) const override;
  Duration SmoothedRttFor(AppId app) const override;
  int ConnectionCountFor(AppId app) const override;
  AppId OwnerOf(ConnectionId connection) const override;
  ReevalHint TakeReevalHint(Time now) override;

  // LogListener:
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override;
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override;
  void OnFailure(ConnectionId connection, const FailureObservation& obs) override;

  // Share estimate for one connection (Figure 9's lower curve).  Virtual so
  // derived strategies that redistribute shares (congestion-manager) audit
  // under the same fair-share oracle.
  virtual double ConnectionAvailability(ConnectionId connection, Time now) const;

  // Every currently attached connection, in id order.  The fuzzing oracles
  // iterate these to audit the fair-share lower bound per connection.
  std::vector<ConnectionId> AttachedConnections() const;

  const SupplyModelInterface& supply_model() const { return *model_; }

  CentralizedStrategy* audit_surface() override { return this; }

 protected:
  // Derived strategies (congestion-manager) reuse the attach/detach
  // bookkeeping and the supply model but regroup shares; they read these
  // directly rather than duplicating the maps.
  const std::map<ConnectionId, AppId>& owners() const { return owner_; }
  const std::map<AppId, std::vector<ConnectionId>>& app_connections() const {
    return app_connections_;
  }
  const SupplyModelInterface* model() const { return model_.get(); }
  Simulation* simulation() const { return sim_; }

 private:
  // Moves one app between connection-count buckets of the histogram.
  void BumpCount(int from, int to);

  Simulation* sim_;
  std::unique_ptr<SupplyModelInterface> model_;
  // Non-null when |model_| is the incremental implementation; its live-set
  // bookkeeping is what makes TakeReevalHint's result exact.
  SupplyModel* fast_model_ = nullptr;
  std::map<ConnectionId, AppId> owner_;          // connection -> app
  std::map<ConnectionId, Endpoint*> endpoints_;  // for detach
  // connection ids per app, ascending — the same visit order the original
  // filter over the connection->app map produced, so per-app availability
  // sums are bit-identical.
  std::map<AppId, std::vector<ConnectionId>> app_connections_;
  // connection count -> number of apps with that count (zero-count apps
  // and empty buckets omitted).  The support of the hint's idle_levels.
  std::map<int, int> apps_by_count_;
  // Apps whose rtt or connection set changed since the last hint.
  std::set<AppId> rtt_dirty_;
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_CENTRALIZED_H_

#include "src/strategies/admission_broker.h"

#include <set>
#include <utility>

#include "src/core/contract.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

AdmissionBrokerStrategy::AdmissionBrokerStrategy(Simulation* sim,
                                                 std::unique_ptr<CentralizedStrategy> inner)
    : sim_(sim), inner_(std::move(inner)) {
  ODY_ASSERT(inner_ != nullptr);
  // The inner estimator reports observation-driven movement here first, so
  // the broker re-arbitrates before the viceroy re-evaluates windows.
  inner_->SetChangeCallback([this] { OnInnerChanged(); });  // ody_lint: owned-capture
}

void AdmissionBrokerStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  inner_->AttachConnection(app, endpoint);
}

void AdmissionBrokerStrategy::DetachConnection(Endpoint* endpoint) {
  inner_->DetachConnection(endpoint);
}

double AdmissionBrokerStrategy::AvailabilityFor(AppId app, Time now) const {
  const double base = inner_->AvailabilityFor(app, now);
  const auto it = degraded_.find(app);
  if (it == degraded_.end()) {
    return base;
  }
  return base < it->second ? base : it->second;
}

ReevalHint AdmissionBrokerStrategy::TakeReevalHint(Time now) {
  // Degradation caps sit outside the inner strategy's idle-level
  // bookkeeping, so its exact hints do not describe what AvailabilityFor
  // reports.  Drain the inner hint but degrade it to the full-scan form.
  ReevalHint hint = inner_->TakeReevalHint(now);
  hint.exact = false;
  hint.idle_levels.clear();
  return hint;
}

double AdmissionBrokerStrategy::CommittedTotal() const {
  double total = 0.0;
  for (const auto& [id, commitment] : commitments_) {
    (void)id;
    total += commitment.lower;
  }
  return total;
}

AdmissionDecision AdmissionBrokerStrategy::DecideAdmission(AppId app,
                                                           const ResourceDescriptor& descriptor,
                                                           Time now) {
  AdmissionDecision decision;
  if (!inner_->HasEstimate()) {
    // Nothing observed yet: admit optimistically, like the seed strategy.
    decision.reason = "no-estimate";
    decision.reason_code = kReasonNoEstimate;
  } else {
    const double supply = inner_->TotalSupply(now);
    if (CommittedTotal() + descriptor.lower <= supply) {
      decision.reason = "ok";
      decision.reason_code = kReasonOk;
    } else {
      decision.verdict = AdmissionVerdict::kRejected;
      decision.reason = "over-committed";
      decision.reason_code = kReasonOverCommitted;
    }
  }
  decision.granted_level = AvailabilityFor(app, now);
  log_.push_back({now, app, 0, decision});
  pending_admit_ =
      decision.verdict == AdmissionVerdict::kRejected ? -1 : static_cast<int>(log_.size()) - 1;
  return decision;
}

void AdmissionBrokerStrategy::OnWindowRegistered(AppId app, RequestId id,
                                                 const ResourceDescriptor& descriptor) {
  if (descriptor.resource != ResourceId::kNetworkBandwidth) {
    return;
  }
  commitments_[id] = {app, descriptor.lower};
  if (pending_admit_ >= 0 && log_[static_cast<size_t>(pending_admit_)].app == app) {
    log_[static_cast<size_t>(pending_admit_)].request = id;
  }
  pending_admit_ = -1;
  // A freshly admitted window supersedes any standing degradation: the app
  // has re-registered at a fidelity the broker accepted.
  degraded_.erase(app);
}

void AdmissionBrokerStrategy::OnWindowCancelled(RequestId id) { commitments_.erase(id); }

void AdmissionBrokerStrategy::OnWindowConsumed(RequestId id) { commitments_.erase(id); }

void AdmissionBrokerStrategy::OnInnerChanged() {
  if (inner_->HasEstimate() && !commitments_.empty()) {
    const Time now = sim_->now();
    const double supply = inner_->TotalSupply(now);
    double committed = CommittedTotal();
    if (committed > supply) {
      // Overload: shed the largest commitments (lowest request id on ties)
      // until the rest fit.  Every victim app is capped at the fair share
      // of supply across the apps holding commitments at pass start, which
      // pushes it below its window's lower bound whenever that bound
      // exceeds the fair share — the upcall that follows tells the app to
      // re-register at a lower fidelity tier.
      std::set<AppId> holders;
      for (const auto& [id, commitment] : commitments_) {
        (void)id;
        holders.insert(commitment.app);
      }
      const double cap = supply / static_cast<double>(holders.size());
      while (committed > supply && !commitments_.empty()) {
        auto victim = commitments_.begin();
        for (auto it = commitments_.begin(); it != commitments_.end(); ++it) {
          if (it->second.lower > victim->second.lower) {
            victim = it;
          }
        }
        degraded_[victim->second.app] = cap;
        log_.push_back({now, victim->second.app, victim->first,
                        {AdmissionVerdict::kDegraded, "overload-degrade", kReasonOverloadDegrade,
                         cap}});
        ODY_TRACE_INSTANT2(sim_->trace(), kViceroy, "admission_degrade", now, victim->second.app,
                           "request", static_cast<double>(victim->first), "cap_bps", cap);
        committed -= victim->second.lower;
        commitments_.erase(victim);
      }
    }
  }
  NotifyChanged();
}

}  // namespace odyssey

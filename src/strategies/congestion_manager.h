// Congestion-manager bandwidth strategy.
//
// Models the Congestion Manager's core idea (Andersen et al., "System
// Support for Bandwidth Management and Content Adaptation"): all flows from
// one client to the same server share congestion state, instead of each
// connection probing for bandwidth independently.  The strategy derives the
// server of a connection from the endpoint's service name (the prefix
// before ':', so "video:bigbuck" and "video:sintel" share the "video"
// server) and allocates hierarchically:
//
//   server  — the per-server budget is the sum of the supply model's
//             per-connection availabilities across the server's flows,
//             i.e. the congestion window the client has collectively
//             earned against that server;
//   flow    — the budget is split equally among the server's flows (the
//             CM's scheduler default), replacing the per-connection
//             independent estimates;
//   app     — an application's availability is the sum of its flows'
//             shares, in ascending connection-id order.
//
// With one flow per server the split is a no-op and the strategy is
// bit-identical to the seed CentralizedStrategy — the differential test
// pins that.  Equal-split shares never drop below the model's fair-share
// floor (each per-flow availability the budget sums is itself >= the
// floor), so the fair-share oracle stays armed.  Redistribution breaks the
// incremental idle-level bookkeeping, so reevaluation hints are inexact
// and the viceroy full-scans — same upcalls, linear scan.

#ifndef SRC_STRATEGIES_CONGESTION_MANAGER_H_
#define SRC_STRATEGIES_CONGESTION_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/strategies/centralized.h"

namespace odyssey {

class CongestionManagerStrategy : public CentralizedStrategy {
 public:
  explicit CongestionManagerStrategy(Simulation* sim, const SupplyModelConfig& config = {},
                                     SupplyModelKind kind = SupplyModelKind::kIncremental)
      : CentralizedStrategy(sim, config, kind) {}
  // Injected supply model (fleet-aggregated); see CentralizedStrategy.
  CongestionManagerStrategy(Simulation* sim, std::unique_ptr<SupplyModelInterface> model)
      : CentralizedStrategy(sim, std::move(model)) {}

  std::string name() const override { return "congestion-manager"; }

  void AttachConnection(AppId app, Endpoint* endpoint) override;
  void DetachConnection(Endpoint* endpoint) override;

  double AvailabilityFor(AppId app, Time now) const override;
  double ConnectionAvailability(ConnectionId connection, Time now) const override;
  ReevalHint TakeReevalHint(Time now) override;

  // The server group a connection belongs to ("" if unknown), and the
  // flows of one server in ascending id order.  Exposed for tests.
  std::string ServerOf(ConnectionId connection) const;
  std::vector<ConnectionId> FlowsOf(const std::string& server) const;

  // The server key for a service name: the prefix before ':'.
  static std::string ServerKeyOf(const std::string& service);

 private:
  std::map<ConnectionId, std::string> server_of_;          // flow -> server key
  std::map<std::string, std::vector<ConnectionId>> flows_;  // server -> flows, ascending
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_CONGESTION_MANAGER_H_

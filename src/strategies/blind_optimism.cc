#include "src/strategies/blind_optimism.h"

namespace odyssey {

BlindOptimismStrategy::BlindOptimismStrategy(Modulator* modulator, const EstimatorConfig& config)
    : config_(config) {
  modulator->AddTransitionListener([this](const TraceSegment& segment) {
    theoretical_bps_ = segment.bandwidth_bps;
    informed_ = true;
    NotifyChanged();
  });
}

BlindOptimismStrategy::~BlindOptimismStrategy() {
  for (auto& [connection, endpoint] : endpoints_) {
    endpoint->log().RemoveListener(this);
  }
}

void BlindOptimismStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  rtt_estimators_.try_emplace(endpoint->id(), config_);
  owner_[endpoint->id()] = app;
  endpoints_[endpoint->id()] = endpoint;
  endpoint->log().AddListener(this);
}

void BlindOptimismStrategy::DetachConnection(Endpoint* endpoint) {
  endpoint->log().RemoveListener(this);
  rtt_estimators_.erase(endpoint->id());
  owner_.erase(endpoint->id());
  endpoints_.erase(endpoint->id());
}

double BlindOptimismStrategy::AvailabilityFor(AppId app, Time now) const {
  (void)app;
  (void)now;
  return theoretical_bps_;
}

double BlindOptimismStrategy::TotalSupply(Time now) const {
  (void)now;
  return theoretical_bps_;
}

Duration BlindOptimismStrategy::SmoothedRttFor(AppId app) const {
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      const auto it = rtt_estimators_.find(connection);
      if (it != rtt_estimators_.end()) {
        return it->second.smoothed_rtt();
      }
    }
  }
  return 0;
}

void BlindOptimismStrategy::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  auto it = rtt_estimators_.find(connection);
  if (it != rtt_estimators_.end()) {
    it->second.OnRoundTrip(obs);
  }
}

void BlindOptimismStrategy::OnThroughput(ConnectionId connection,
                                         const ThroughputObservation& obs) {
  (void)connection;
  (void)obs;  // blind optimism ignores measured throughput entirely
}

}  // namespace odyssey

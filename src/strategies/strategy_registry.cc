#include "src/strategies/strategy_registry.h"

#include <utility>

#include "src/core/contract.h"
#include "src/strategies/admission_broker.h"
#include "src/strategies/blind_optimism.h"
#include "src/strategies/centralized.h"
#include "src/strategies/congestion_manager.h"
#include "src/strategies/laissez_faire.h"

namespace odyssey {
namespace {

std::unique_ptr<CentralizedStrategy> MakeCentralized(StrategyContext&& ctx) {
  if (ctx.injected_model != nullptr) {
    return std::make_unique<CentralizedStrategy>(ctx.sim, std::move(ctx.injected_model));
  }
  return std::make_unique<CentralizedStrategy>(ctx.sim, ctx.supply, ctx.supply_kind);
}

StrategyRegistry MakeBuiltin() {
  StrategyRegistry registry;
  registry.Register(
      {"odyssey", "centralized supply model with per-connection fair shares (the paper)",
       /*audited=*/true, /*admission=*/false,
       [](StrategyContext&& ctx) -> std::unique_ptr<BandwidthStrategy> {
         return MakeCentralized(std::move(ctx));
       }});
  registry.Register({"laissez-faire", "each connection estimates in isolation (Figure 14's over-estimator)",
                     /*audited=*/false, /*admission=*/false,
                     [](StrategyContext&& ctx) -> std::unique_ptr<BandwidthStrategy> {
                       return std::make_unique<LaissezFaireStrategy>(ctx.supply.estimator);
                     }});
  registry.Register({"blind-optimism", "theoretical link bandwidth delivered at each transition",
                     /*audited=*/false, /*admission=*/false,
                     [](StrategyContext&& ctx) -> std::unique_ptr<BandwidthStrategy> {
                       ODY_ASSERT(ctx.modulator != nullptr,
                                  "blind-optimism needs the rig's modulator");
                       return std::make_unique<BlindOptimismStrategy>(ctx.modulator,
                                                                     ctx.supply.estimator);
                     }});
  registry.Register(
      {"congestion-manager",
       "per-server shared congestion state, hierarchical server->app->connection allocation",
       /*audited=*/true, /*admission=*/false,
       [](StrategyContext&& ctx) -> std::unique_ptr<BandwidthStrategy> {
         if (ctx.injected_model != nullptr) {
           return std::make_unique<CongestionManagerStrategy>(ctx.sim,
                                                              std::move(ctx.injected_model));
         }
         return std::make_unique<CongestionManagerStrategy>(ctx.sim, ctx.supply, ctx.supply_kind);
       }});
  registry.Register(
      {"admission-broker", "QoS admission control (admit/degrade/reject) over centralized estimation",
       /*audited=*/true, /*admission=*/true,
       [](StrategyContext&& ctx) -> std::unique_ptr<BandwidthStrategy> {
         Simulation* sim = ctx.sim;
         return std::make_unique<AdmissionBrokerStrategy>(sim, MakeCentralized(std::move(ctx)));
       }});
  return registry;
}

}  // namespace

void StrategyRegistry::Register(StrategyInfo info) {
  ODY_ASSERT(Find(info.name) == nullptr, "duplicate strategy name");
  infos_.push_back(std::move(info));
}

const StrategyInfo* StrategyRegistry::Find(const std::string& name) const {
  for (const StrategyInfo& info : infos_) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> StrategyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(infos_.size());
  for (const StrategyInfo& info : infos_) {
    names.push_back(info.name);
  }
  return names;
}

std::unique_ptr<BandwidthStrategy> StrategyRegistry::Create(const std::string& name,
                                                            StrategyContext&& ctx) const {
  const StrategyInfo* info = Find(name);
  ODY_ASSERT(info != nullptr, "unknown strategy name");
  return info->factory(std::move(ctx));
}

const StrategyRegistry& StrategyRegistry::Builtin() {
  static const StrategyRegistry* kRegistry = new StrategyRegistry(MakeBuiltin());
  return *kRegistry;
}

}  // namespace odyssey

// Name-indexed registry of bandwidth-management strategies (the "zoo").
//
// Every strategy the reproduction knows is registered here by name, so the
// fuzzer (--strategy / the seed-drawn strategy dimension), the campaign
// engine (tier_zoo), the fleet rig, and the conformance test kit all build
// strategies the same way and discover new ones by adding one registry
// line.  The builtin registry holds the paper's three policies plus the two
// production strategies grown on top:
//
//   odyssey            — centralized supply model, per-connection shares
//   laissez-faire      — isolated per-connection estimates
//   blind-optimism     — theoretical link bandwidth at each transition
//   congestion-manager — per-server shared congestion state, hierarchical
//                        server -> app -> connection allocation
//   admission-broker   — QoS admission control over centralized estimation
//
// A factory receives a StrategyContext describing the rig it is being
// built into; centralized-family strategies accept an injected supply
// model there, which is how the fleet's sharded aggregation composes with
// every member of the family (including admission control).

#ifndef SRC_STRATEGIES_STRATEGY_REGISTRY_H_
#define SRC_STRATEGIES_STRATEGY_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bandwidth_strategy.h"
#include "src/estimator/supply_model.h"
#include "src/net/modulator.h"
#include "src/sim/simulation.h"

namespace odyssey {

// Everything a strategy factory may need.  |injected_model| is consumed by
// centralized-family factories when non-null; |modulator| is required only
// by blind-optimism (the transition listener).
struct StrategyContext {
  Simulation* sim = nullptr;
  Modulator* modulator = nullptr;
  SupplyModelConfig supply;
  SupplyModelKind supply_kind = SupplyModelKind::kIncremental;
  std::unique_ptr<SupplyModelInterface> injected_model;
};

struct StrategyInfo {
  std::string name;
  std::string summary;
  // Exposes a CentralizedStrategy audit surface (audit_surface() non-null),
  // so the supply and fair-share oracles can arm.  The conformance kit also
  // keys its shared-supply assertions (fair-share floor, one-app
  // equivalence to the seed strategy) off this capability.
  bool audited = false;
  // Implements ArbitrationStrategy (may reject or degrade registrations).
  bool admission = false;
  std::function<std::unique_ptr<BandwidthStrategy>(StrategyContext&&)> factory;
};

class StrategyRegistry {
 public:
  void Register(StrategyInfo info);

  // nullptr when |name| is unknown.
  const StrategyInfo* Find(const std::string& name) const;

  // Registered names, in registration order (deterministic for sweeps).
  std::vector<std::string> Names() const;

  // Builds |name|'s strategy; asserts the name is registered.
  std::unique_ptr<BandwidthStrategy> Create(const std::string& name, StrategyContext&& ctx) const;

  // The process-wide registry holding the five builtin strategies.
  static const StrategyRegistry& Builtin();

 private:
  std::vector<StrategyInfo> infos_;
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_STRATEGY_REGISTRY_H_

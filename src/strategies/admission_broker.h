// Admission-broker bandwidth strategy.
//
// A QoS layer atop centralized arbitration, after Al-Hawari & Manolakos's
// runtime QoS service: the broker tracks the bandwidth the client has
// *committed* to admitted windows of tolerance (each window's lower bound
// is an implicit reservation) and arbitrates new registrations against the
// estimated supply:
//
//   admit   — commitments plus the new window's lower bound fit within
//             supply, or no estimate exists yet (optimistic start);
//   reject  — the new window would over-commit the link; nothing is
//             registered and the application sees the structured
//             AdmissionDecision in its RequestResult;
//   degrade — when supply *drops* below the committed total, the broker
//             picks victims (largest commitment first, lowest request id
//             on ties), releases their commitments, and caps the victim
//             app's availability at its fair share of supply.  The cap
//             drives the app below its window, so the normal upcall path
//             tells it to re-register at a lower fidelity tier; the cap
//             lifts when the app's next window is admitted.
//
// Estimation is delegated wholesale to an inner CentralizedStrategy (any
// centralized-family strategy works, including the congestion manager), so
// the broker composes with fleet-aggregated supply models and keeps the
// full oracle surface via audit_surface().  Decisions are deterministic
// functions of observed history; every decision is appended to an
// inspectable log, which the property tests replay.

#ifndef SRC_STRATEGIES_ADMISSION_BROKER_H_
#define SRC_STRATEGIES_ADMISSION_BROKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/strategies/arbitration_strategy.h"
#include "src/strategies/centralized.h"

namespace odyssey {

class AdmissionBrokerStrategy : public ArbitrationStrategy {
 public:
  // One admission decision, as logged.  |request| is 0 for rejects (nothing
  // was registered) and for admits until the registration lands.
  struct AdmissionEvent {
    Time at = 0;
    AppId app = 0;
    RequestId request = 0;
    AdmissionDecision decision;
  };

  // Reason codes (AdmissionDecision::reason_code) for trace consumers.
  enum ReasonCode : int {
    kReasonOk = 0,
    kReasonNoEstimate = 1,
    kReasonOverCommitted = 2,
    kReasonOverloadDegrade = 3,
  };

  AdmissionBrokerStrategy(Simulation* sim, std::unique_ptr<CentralizedStrategy> inner);

  // BandwidthStrategy (delegated to the inner estimator; availability is
  // capped for degraded apps):
  std::string name() const override { return "admission-broker"; }
  void AttachConnection(AppId app, Endpoint* endpoint) override;
  void DetachConnection(Endpoint* endpoint) override;
  double AvailabilityFor(AppId app, Time now) const override;
  bool HasEstimate() const override { return inner_->HasEstimate(); }
  double TotalSupply(Time now) const override { return inner_->TotalSupply(now); }
  Duration SmoothedRttFor(AppId app) const override { return inner_->SmoothedRttFor(app); }
  int ConnectionCountFor(AppId app) const override { return inner_->ConnectionCountFor(app); }
  AppId OwnerOf(ConnectionId connection) const override { return inner_->OwnerOf(connection); }
  ReevalHint TakeReevalHint(Time now) override;
  CentralizedStrategy* audit_surface() override { return inner_->audit_surface(); }

  // ArbitrationStrategy:
  AdmissionDecision DecideAdmission(AppId app, const ResourceDescriptor& descriptor,
                                    Time now) override;
  void OnWindowRegistered(AppId app, RequestId id, const ResourceDescriptor& descriptor) override;
  void OnWindowCancelled(RequestId id) override;
  void OnWindowConsumed(RequestId id) override;

  // Inspection surface for the property tests and tools.
  const std::vector<AdmissionEvent>& admission_log() const { return log_; }
  double CommittedTotal() const;
  bool IsDegraded(AppId app) const { return degraded_.count(app) != 0; }
  const CentralizedStrategy& inner() const { return *inner_; }

 private:
  struct Commitment {
    AppId app = 0;
    double lower = 0.0;
  };

  // Re-arbitrates after the inner estimator moves: degrades victims while
  // the committed total exceeds supply, then forwards the change.
  void OnInnerChanged();

  Simulation* sim_;
  std::unique_ptr<CentralizedStrategy> inner_;
  std::map<RequestId, Commitment> commitments_;  // admitted, not yet consumed
  std::map<AppId, double> degraded_;             // app -> availability cap
  std::vector<AdmissionEvent> log_;
  // Index into |log_| of the admit event awaiting its registration id; -1
  // when none is pending.  Registration follows the decision synchronously.
  int pending_admit_ = -1;
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_ADMISSION_BROKER_H_

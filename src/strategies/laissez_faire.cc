#include "src/strategies/laissez_faire.h"

namespace odyssey {

LaissezFaireStrategy::LaissezFaireStrategy(const EstimatorConfig& config) : config_(config) {}

LaissezFaireStrategy::~LaissezFaireStrategy() {
  for (auto& [connection, endpoint] : endpoints_) {
    endpoint->log().RemoveListener(this);
  }
}

void LaissezFaireStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  estimators_.try_emplace(endpoint->id(), config_);
  owner_[endpoint->id()] = app;
  endpoints_[endpoint->id()] = endpoint;
  endpoint->log().AddListener(this);
}

void LaissezFaireStrategy::DetachConnection(Endpoint* endpoint) {
  endpoint->log().RemoveListener(this);
  estimators_.erase(endpoint->id());
  owner_.erase(endpoint->id());
  endpoints_.erase(endpoint->id());
}

double LaissezFaireStrategy::AvailabilityFor(AppId app, Time now) const {
  (void)now;
  double total = 0.0;
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      const auto it = estimators_.find(connection);
      if (it != estimators_.end()) {
        total += it->second.bandwidth_bps();
      }
    }
  }
  return total;
}

bool LaissezFaireStrategy::HasEstimate() const {
  for (const auto& [connection, estimator] : estimators_) {
    if (estimator.has_bandwidth()) {
      return true;
    }
  }
  return false;
}

double LaissezFaireStrategy::TotalSupply(Time now) const {
  (void)now;
  // No coordination: there is no meaningful notion of total supply; report
  // the largest single-connection estimate.
  double best = 0.0;
  for (const auto& [connection, estimator] : estimators_) {
    if (estimator.bandwidth_bps() > best) {
      best = estimator.bandwidth_bps();
    }
  }
  return best;
}

Duration LaissezFaireStrategy::SmoothedRttFor(AppId app) const {
  for (const auto& [connection, owner] : owner_) {
    if (owner == app) {
      const auto it = estimators_.find(connection);
      if (it != estimators_.end()) {
        return it->second.smoothed_rtt();
      }
    }
  }
  return 0;
}

void LaissezFaireStrategy::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  auto it = estimators_.find(connection);
  if (it == estimators_.end()) {
    return;
  }
  it->second.OnRoundTrip(obs);
  NotifyChanged();
}

void LaissezFaireStrategy::OnThroughput(ConnectionId connection,
                                        const ThroughputObservation& obs) {
  auto it = estimators_.find(connection);
  if (it == estimators_.end()) {
    return;
  }
  it->second.OnThroughput(obs);
  NotifyChanged();
}

}  // namespace odyssey

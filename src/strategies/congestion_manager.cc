#include "src/strategies/congestion_manager.h"

#include <algorithm>

namespace odyssey {

std::string CongestionManagerStrategy::ServerKeyOf(const std::string& service) {
  const auto colon = service.find(':');
  return colon == std::string::npos ? service : service.substr(0, colon);
}

void CongestionManagerStrategy::AttachConnection(AppId app, Endpoint* endpoint) {
  CentralizedStrategy::AttachConnection(app, endpoint);
  const std::string server = ServerKeyOf(endpoint->name());
  server_of_[endpoint->id()] = server;
  std::vector<ConnectionId>& flows = flows_[server];
  flows.insert(std::lower_bound(flows.begin(), flows.end(), endpoint->id()), endpoint->id());
}

void CongestionManagerStrategy::DetachConnection(Endpoint* endpoint) {
  const auto it = server_of_.find(endpoint->id());
  if (it != server_of_.end()) {
    const auto flows_it = flows_.find(it->second);
    std::vector<ConnectionId>& flows = flows_it->second;
    flows.erase(std::find(flows.begin(), flows.end(), endpoint->id()));
    if (flows.empty()) {
      flows_.erase(flows_it);
    }
    server_of_.erase(it);
  }
  CentralizedStrategy::DetachConnection(endpoint);
}

double CongestionManagerStrategy::ConnectionAvailability(ConnectionId connection, Time now) const {
  const auto it = server_of_.find(connection);
  if (it == server_of_.end()) {
    // Unknown flow: the model's hypothetical-extra-connection fair share,
    // same as the seed strategy.
    return CentralizedStrategy::ConnectionAvailability(connection, now);
  }
  const std::vector<ConnectionId>& flows = flows_.at(it->second);
  double budget = 0.0;
  for (const ConnectionId flow : flows) {
    budget += CentralizedStrategy::ConnectionAvailability(flow, now);
  }
  return budget / static_cast<double>(flows.size());
}

double CongestionManagerStrategy::AvailabilityFor(AppId app, Time now) const {
  const auto it = app_connections().find(app);
  if (it == app_connections().end()) {
    return 0.0;
  }
  double total = 0.0;
  for (const ConnectionId connection : it->second) {
    total += ConnectionAvailability(connection, now);
  }
  return total;
}

ReevalHint CongestionManagerStrategy::TakeReevalHint(Time now) {
  // Redistribution invalidates the idle-level bookkeeping: an idle flow
  // sharing a server with a busy one no longer sits at the pure fair-share
  // level.  Drain the base hint (it clears the dirty set) but degrade it to
  // inexact so the viceroy full-scans.
  ReevalHint hint = CentralizedStrategy::TakeReevalHint(now);
  hint.exact = false;
  hint.idle_levels.clear();
  return hint;
}

std::string CongestionManagerStrategy::ServerOf(ConnectionId connection) const {
  const auto it = server_of_.find(connection);
  return it == server_of_.end() ? std::string() : it->second;
}

std::vector<ConnectionId> CongestionManagerStrategy::FlowsOf(const std::string& server) const {
  const auto it = flows_.find(server);
  return it == flows_.end() ? std::vector<ConnectionId>() : it->second;
}

}  // namespace odyssey

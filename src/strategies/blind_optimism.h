// Blind-optimism bandwidth management (§6.2.3).
//
// Models an operating system whose networking layer immediately notifies
// the viceroy when switching between networking technologies: the
// theoretical bandwidth is delivered at each transition with no discovery
// delay, but it does not reflect the impact of other applications — every
// application is told the full link bandwidth is available to it.

#ifndef SRC_STRATEGIES_BLIND_OPTIMISM_H_
#define SRC_STRATEGIES_BLIND_OPTIMISM_H_

#include <map>

#include "src/core/bandwidth_strategy.h"
#include "src/estimator/connection_estimator.h"
#include "src/net/modulator.h"
#include "src/rpc/observation_log.h"

namespace odyssey {

class BlindOptimismStrategy : public BandwidthStrategy, public LogListener {
 public:
  // Registers a transition listener on |modulator|; each trace transition
  // becomes an immediate availability change.
  explicit BlindOptimismStrategy(Modulator* modulator,
                                 const EstimatorConfig& config = {});
  ~BlindOptimismStrategy() override;

  // BandwidthStrategy:
  std::string name() const override { return "blind-optimism"; }
  void AttachConnection(AppId app, Endpoint* endpoint) override;
  void DetachConnection(Endpoint* endpoint) override;
  double AvailabilityFor(AppId app, Time now) const override;
  bool HasEstimate() const override { return informed_; }
  double TotalSupply(Time now) const override;
  Duration SmoothedRttFor(AppId app) const override;

  // LogListener (round trips only; used to answer SmoothedRttFor so that
  // applications can still convert sizes to predicted times):
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override;
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override;

 private:
  EstimatorConfig config_;
  double theoretical_bps_ = 0.0;
  bool informed_ = false;  // any transition notification received
  std::map<ConnectionId, ConnectionEstimator> rtt_estimators_;
  std::map<ConnectionId, AppId> owner_;
  std::map<ConnectionId, Endpoint*> endpoints_;
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_BLIND_OPTIMISM_H_

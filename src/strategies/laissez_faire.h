// Laissez-faire bandwidth management (§6.2.3).
//
// Each endpoint's log is examined in isolation, reflecting what applications
// would discover on their own: a connection's availability estimate is its
// own smoothed observed bandwidth.  Under intermittent contention this
// systematically over-estimates availability — each burst is observed at
// close to full link rate whenever competitors happen to be idle — which is
// precisely the pathology Figure 14 demonstrates.

#ifndef SRC_STRATEGIES_LAISSEZ_FAIRE_H_
#define SRC_STRATEGIES_LAISSEZ_FAIRE_H_

#include <map>

#include "src/core/bandwidth_strategy.h"
#include "src/estimator/connection_estimator.h"
#include "src/rpc/observation_log.h"

namespace odyssey {

class LaissezFaireStrategy : public BandwidthStrategy, public LogListener {
 public:
  explicit LaissezFaireStrategy(const EstimatorConfig& config = {});
  ~LaissezFaireStrategy() override;

  // BandwidthStrategy:
  std::string name() const override { return "laissez-faire"; }
  void AttachConnection(AppId app, Endpoint* endpoint) override;
  void DetachConnection(Endpoint* endpoint) override;
  double AvailabilityFor(AppId app, Time now) const override;
  bool HasEstimate() const override;
  double TotalSupply(Time now) const override;
  Duration SmoothedRttFor(AppId app) const override;

  // LogListener:
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override;
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override;

 private:
  EstimatorConfig config_;
  std::map<ConnectionId, ConnectionEstimator> estimators_;
  std::map<ConnectionId, AppId> owner_;
  std::map<ConnectionId, Endpoint*> endpoints_;
};

}  // namespace odyssey

#endif  // SRC_STRATEGIES_LAISSEZ_FAIRE_H_

#include "src/wardens/telemetry_warden.h"

#include <utility>

#include "src/core/tsop_codec.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

int TelemetryWarden::AdaptiveLevel(double bandwidth_bps) {
  if (bandwidth_bps >= kLiveFloor) {
    return 0;
  }
  if (bandwidth_bps >= kThinnedFloor) {
    return 1;
  }
  return 2;
}

void TelemetryWarden::SetSampleCallback(AppId app, SampleCallback callback) {
  callbacks_[app] = std::move(callback);
}

void TelemetryWarden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                           TsopCallback done) {
  switch (opcode) {
    case kTelemetrySubscribe: {
      TelemetrySubscribeRequest request;
      if (!UnpackStruct(in, &request) || request.fixed_level > 2) {
        done(InvalidArgumentError("bad subscribe request"), "");
        return;
      }
      Duration native_period = 0;
      if (const Status status = server_->NativePeriod(path, &native_period); !status.ok()) {
        done(status, "");
        return;
      }
      Subscription& subscription = subscriptions_[app];
      subscription.app = app;
      subscription.feed = path;
      if (subscription.endpoint == nullptr) {
        subscription.endpoint = client()->OpenConnection(app, "telemetry:" + path);
      }
      subscription.active = true;
      subscription.fixed = request.fixed_level >= 0;
      subscription.level = request.fixed_level >= 0 ? request.fixed_level : 0;
      subscription.native_period = native_period;
      subscription.last_seen = 0;
      subscription.stats = TelemetryStats{};
      subscription.staleness_ms_sum = 0.0;
      done(OkStatus(), PackStruct(TelemetrySubscribed{subscription.endpoint->id()}));
      ScheduleNextPoll(app);
      return;
    }
    case kTelemetryUnsubscribe: {
      auto it = subscriptions_.find(app);
      if (it == subscriptions_.end()) {
        done(NotFoundError("no subscription"), "");
        return;
      }
      it->second.active = false;
      it->second.stats.current_level = it->second.level;
      if (it->second.stats.samples_delivered > 0) {
        it->second.stats.mean_staleness_ms =
            it->second.staleness_ms_sum / it->second.stats.samples_delivered;
      }
      done(OkStatus(), PackStruct(it->second.stats));
      return;
    }
    case kTelemetrySetLevel: {
      TelemetrySetLevelRequest request;
      auto it = subscriptions_.find(app);
      if (it == subscriptions_.end() || !UnpackStruct(in, &request) || request.level < 0 ||
          request.level > 2) {
        done(InvalidArgumentError("bad set-level request"), "");
        return;
      }
      if (it->second.level != request.level) {
        it->second.level = request.level;
        ++it->second.stats.level_changes;
      }
      it->second.fixed = true;
      done(OkStatus(), "");
      return;
    }
    case kTelemetryStats: {
      auto it = subscriptions_.find(app);
      if (it == subscriptions_.end()) {
        done(NotFoundError("no subscription"), "");
        return;
      }
      TelemetryStats stats = it->second.stats;
      stats.current_level = it->second.level;
      if (stats.samples_delivered > 0) {
        stats.mean_staleness_ms = it->second.staleness_ms_sum / stats.samples_delivered;
      }
      done(OkStatus(), PackStruct(stats));
      return;
    }
    default:
      done(UnsupportedError("unknown telemetry tsop"), "");
      return;
  }
}

void TelemetryWarden::ScheduleNextPoll(AppId app) {
  auto it = subscriptions_.find(app);
  if (it == subscriptions_.end() || !it->second.active) {
    return;
  }
  Subscription& subscription = it->second;
  const TelemetryLevel& level = kTelemetryLevels[subscription.level];
  // A poll cycle covers batch_samples kept samples, each standing for
  // sampling_divisor native periods.
  const Duration cycle = subscription.native_period *
                         static_cast<Duration>(level.sampling_divisor * level.batch_samples);
  client()->sim()->Schedule(cycle, [this, app] { Poll(app); });
}

void TelemetryWarden::Poll(AppId app) {
  auto it = subscriptions_.find(app);
  if (it == subscriptions_.end() || !it->second.active) {
    return;
  }
  Subscription& subscription = it->second;

  // Adapt the delivery level before each cycle, unless pinned.
  if (!subscription.fixed) {
    const int wanted =
        AdaptiveLevel(client()->CurrentLevel(app, ResourceId::kNetworkBandwidth));
    if (wanted != subscription.level) {
      subscription.level = wanted;
      ++subscription.stats.level_changes;
      ODY_TRACE_INSTANT1(client()->sim()->trace(), kWarden, "telemetry_level",
                         client()->sim()->now(), app, "level", wanted);
    }
  }
  const TelemetryLevel& level = kTelemetryLevels[subscription.level];

  // Ask the server for this cycle's batch: the newest batch_samples of the
  // thinned stream.
  std::vector<TelemetrySample> latest;
  const int native_span = level.sampling_divisor * level.batch_samples;
  if (!server_->Latest(subscription.feed, native_span, &latest).ok()) {
    return;
  }
  std::vector<TelemetrySample> kept;
  for (size_t i = 0; i < latest.size(); i += static_cast<size_t>(level.sampling_divisor)) {
    if (latest[i].produced_at > subscription.last_seen) {
      kept.push_back(latest[i]);
    }
  }
  ++subscription.stats.polls;
  const double bytes = TelemetryServer::kTelemetrySampleBytes *
                       static_cast<double>(kept.empty() ? 1 : kept.size());
  subscription.endpoint->Fetch(bytes, kMillisecond, [this, app, kept = std::move(kept)] {
    auto sit = subscriptions_.find(app);
    if (sit == subscriptions_.end() || !sit->second.active) {
      return;
    }
    Subscription& s = sit->second;
    const Time now = client()->sim()->now();
    for (const TelemetrySample& sample : kept) {
      if (sample.produced_at > s.last_seen) {
        s.last_seen = sample.produced_at;
      }
      ++s.stats.samples_delivered;
      s.staleness_ms_sum += DurationToMillis(now - sample.produced_at);
      const auto cb = callbacks_.find(app);
      if (cb != callbacks_.end() && cb->second) {
        cb->second(s.feed, sample);
      }
    }
    ScheduleNextPoll(app);
  });
}

}  // namespace odyssey

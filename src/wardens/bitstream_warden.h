// The bitstream warden: the synthetic streaming data type used by the
// agility experiments (§6.2.1).
//
// A bitstream application consumes data as fast as possible (or paced at a
// target rate, for the varying-demand experiments) through a streaming
// warden over a single connection from a server.
//
// Tsops:
//   kBitstreamStart in: BitstreamParams   out: BitstreamStarted
//   kBitstreamStop  in: -                 out: BitstreamTotals

#ifndef SRC_WARDENS_BITSTREAM_WARDEN_H_
#define SRC_WARDENS_BITSTREAM_WARDEN_H_

#include <map>
#include <string>

#include "src/core/odyssey_client.h"
#include "src/core/warden.h"
#include "src/rpc/endpoint.h"

namespace odyssey {

enum BitstreamTsopOpcode : int {
  kBitstreamStart = 1,
  kBitstreamStop = 2,
};

struct BitstreamParams {
  // Target consumption rate in bytes/second; zero or negative means "as
  // fast as possible".
  double target_bps = 0.0;
  // Window size for each streamed transfer; zero picks the default.
  double window_bytes = 0.0;
};

struct BitstreamStarted {
  // The connection carrying the stream, so measurement harnesses can ask
  // the viceroy about this connection's share estimate.
  ConnectionId connection = 0;
};

struct BitstreamTotals {
  double bytes_consumed = 0.0;
};

class BitstreamWarden : public Warden {
 public:
  BitstreamWarden() : Warden("bitstream") {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override;

 private:
  struct Session {
    Endpoint* endpoint = nullptr;
    double target_bps = 0.0;
    double window_bytes = 0.0;
    bool running = false;
    double bytes_consumed = 0.0;
  };

  void PumpStream(AppId app);

  std::map<AppId, Session> sessions_;
};

}  // namespace odyssey

#endif  // SRC_WARDENS_BITSTREAM_WARDEN_H_

// The file warden: whole-file caching with consistency as the fidelity
// dimension.
//
// §2.2: "Fidelity has many dimensions.  One well-known, universal dimension
// is consistency.  Systems such as Coda, Ficus and Bayou expose potentially
// stale data to applications when network connectivity is poor."  This
// warden makes that dimension concrete: files fetched from a FileServer are
// cached whole (charging the cache manager when one is attached), and reads
// are served under one of three consistency levels —
//
//   kStrict     (fidelity 1.0)  validate the cached version with the server
//                               on every read;
//   kPeriodic   (fidelity 0.6)  validate only when the cached copy is older
//                               than a TTL;
//   kOptimistic (fidelity 0.3)  serve whatever is cached, never validate —
//                               disconnected-style operation.
//
// The adaptive mode picks a level from the bandwidth estimate, trading
// consistency for performance exactly as the paper's taxonomy prescribes.
//
// Tsops:
//   kFileRead           in: -                       out: FileReadReply
//   kFileSetConsistency in: FileSetConsistencyRequest out: -
//   kFileStats          in: -                       out: FileWardenStats
// (the file is named by the tsop path, e.g. /odyssey/files/etc/motd)

#ifndef SRC_WARDENS_FILE_WARDEN_H_
#define SRC_WARDENS_FILE_WARDEN_H_

#include <list>
#include <map>
#include <string>

#include "src/core/cache_manager.h"
#include "src/core/odyssey_client.h"
#include "src/core/warden.h"
#include "src/servers/file_server.h"

namespace odyssey {

enum FileTsopOpcode : int {
  kFileRead = 1,
  kFileSetConsistency = 2,
  kFileStats = 3,
};

enum class FileConsistency : int {
  kStrict = 0,
  kPeriodic = 1,
  kOptimistic = 2,
  kAdaptive = 3,  // warden picks from the bandwidth estimate
};

const char* FileConsistencyName(FileConsistency level);
double FileConsistencyFidelity(FileConsistency level);

struct FileSetConsistencyRequest {
  int level = 0;
};

struct FileReadReply {
  double bytes = 0.0;
  uint64_t version = 0;
  double fidelity = 0.0;  // of the consistency level that served the read
  bool cache_hit = false;
  bool validated = false;
};

struct FileWardenStats {
  int reads = 0;
  int cache_hits = 0;
  int misses = 0;
  int validations = 0;
  int refetches = 0;      // validation found the cached copy stale
  int stale_serves = 0;   // served a copy the server had already updated
  int evictions = 0;
};

class FileWarden : public Warden {
 public:
  // Validation TTL for the periodic level.
  static constexpr Duration kPeriodicTtl = 10 * kSecond;
  // Adaptive thresholds: strict needs headroom for a validation round trip
  // per read; below the low mark the warden goes optimistic.
  static constexpr double kStrictBandwidthFloor = 48.0 * 1024.0;
  static constexpr double kPeriodicBandwidthFloor = 12.0 * 1024.0;

  // |cache| may be null (unbounded cache, no accounting).
  explicit FileWarden(FileServer* server, CacheManager* cache = nullptr)
      : Warden("files"), server_(server), cache_(cache) {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override;

  // Byte-stream access: Read() serves the file body descriptor under the
  // current consistency level.
  void Read(AppId app, const std::string& path, ReadCallback done) override;

  // The level the adaptive policy picks at |bandwidth_bps| (for tests).
  static FileConsistency AdaptiveLevel(double bandwidth_bps);

 private:
  struct CachedFile {
    double bytes = 0.0;
    uint64_t version = 0;
    Time validated_at = 0;
    std::list<std::string>::iterator lru_position;
  };

  Endpoint* EndpointFor(AppId app);
  FileConsistency EffectiveLevel(AppId app) const;
  void ServeRead(AppId app, const std::string& path, TsopCallback done);
  // Fetches |path| whole, inserting it into the cache (evicting LRU files
  // to make room), then completes with a fresh reply.
  void FetchAndServe(AppId app, const std::string& path, bool count_refetch, TsopCallback done);
  void TouchLru(const std::string& path);
  void InsertWithEviction(const std::string& path, const FileInfo& info);

  FileServer* server_;
  CacheManager* cache_;
  std::map<AppId, Endpoint*> endpoints_;
  std::map<AppId, FileConsistency> level_;
  std::map<std::string, CachedFile> cache_entries_;
  std::list<std::string> lru_;  // front = most recent
  FileWardenStats stats_;
};

}  // namespace odyssey

#endif  // SRC_WARDENS_FILE_WARDEN_H_

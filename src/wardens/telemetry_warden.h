// The telemetry warden: sampling rate and timeliness as fidelity dimensions.
//
// §2.2: "For telemetry data, appropriate dimensions include sampling rate
// and timeliness."  A subscription pulls a feed from the telemetry server
// at one of several *delivery levels*, each a (sampling-divisor, batching)
// pair: full fidelity polls every native sample immediately; lower levels
// skip samples (reduced sampling rate) and batch deliveries (reduced
// timeliness), cutting bandwidth by an order of magnitude per step.  The
// warden adapts the level to its bandwidth availability and reports every
// delivered sample to the subscriber through an upcall-style callback.
//
// Tsops (the feed is named by the tsop path):
//   kTelemetrySubscribe   in: TelemetrySubscribeRequest  out: TelemetrySubscribed
//   kTelemetryUnsubscribe in: -                          out: TelemetryStats
//   kTelemetrySetLevel    in: TelemetrySetLevelRequest   out: -
//   kTelemetryStats       in: -                          out: TelemetryStats

#ifndef SRC_WARDENS_TELEMETRY_WARDEN_H_
#define SRC_WARDENS_TELEMETRY_WARDEN_H_

#include <functional>
#include <map>
#include <string>

#include "src/core/odyssey_client.h"
#include "src/core/warden.h"
#include "src/servers/telemetry_server.h"

namespace odyssey {

enum TelemetryTsopOpcode : int {
  kTelemetrySubscribe = 1,
  kTelemetryUnsubscribe = 2,
  kTelemetrySetLevel = 3,
  kTelemetryStats = 4,
};

// A delivery level: poll every |sampling_divisor|-th native sample, and
// deliver in batches of |batch_samples| (larger batches amortize protocol
// cost at the price of staleness).
struct TelemetryLevel {
  const char* name;
  double fidelity;
  int sampling_divisor;
  int batch_samples;
};

inline constexpr TelemetryLevel kTelemetryLevels[] = {
    {"live", 1.0, 1, 1},
    {"thinned", 0.6, 4, 2},
    {"digest", 0.2, 16, 4},
};

struct TelemetrySubscribeRequest {
  // -1 adapts to bandwidth; otherwise pins an index into kTelemetryLevels.
  int fixed_level = -1;
};

struct TelemetrySubscribed {
  ConnectionId connection = 0;
};

struct TelemetrySetLevelRequest {
  int level = 0;
};

struct TelemetryStats {
  int samples_delivered = 0;
  int polls = 0;
  double mean_staleness_ms = 0.0;  // production-to-delivery lag
  int level_changes = 0;
  int current_level = 0;
};

class TelemetryWarden : public Warden {
 public:
  // Bandwidth (bytes/second) above which each level is sustainable; the
  // adaptive policy picks the best affordable one.
  static constexpr double kLiveFloor = 24.0 * 1024.0;
  static constexpr double kThinnedFloor = 6.0 * 1024.0;

  // A subscriber callback, invoked once per delivered sample.
  using SampleCallback = std::function<void(const std::string& feed, const TelemetrySample&)>;

  explicit TelemetryWarden(TelemetryServer* server) : Warden("telemetry"), server_(server) {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override;

  // Registers the per-app sample sink (applications cannot receive bulk
  // data through a tsop reply buffer; this mirrors the upcall mechanism).
  void SetSampleCallback(AppId app, SampleCallback callback);

  // The level the adaptive policy picks at |bandwidth_bps| (for tests).
  static int AdaptiveLevel(double bandwidth_bps);

 private:
  struct Subscription {
    AppId app = 0;
    std::string feed;
    Endpoint* endpoint = nullptr;
    bool active = false;
    bool fixed = false;
    int level = 0;
    Duration native_period = 0;
    Time last_seen = 0;  // production time of the newest delivered sample
    TelemetryStats stats;
    double staleness_ms_sum = 0.0;
  };

  void Poll(AppId app);
  void ScheduleNextPoll(AppId app);

  TelemetryServer* server_;
  std::map<AppId, Subscription> subscriptions_;
  std::map<AppId, SampleCallback> callbacks_;
};

}  // namespace odyssey

#endif  // SRC_WARDENS_TELEMETRY_WARDEN_H_

// The video warden (§5.1).
//
// Satisfies client requests for movie data and fetches tracks from the
// video server.  The warden performs read-ahead of frames to lower latency,
// fetching small batches of consecutive frames on the current track into a
// prefetch buffer.  When the player switches from a low-fidelity track to a
// higher one, prefetched low-quality frames are discarded; on a downgrade,
// already-buffered high-quality frames are kept and displayed.
//
// Tsops (all parameter structs in video_tsops below):
//   kVideoOpen      in: movie name (raw string)   out: VideoMetaReply
//   kVideoSetTrack  in: VideoSetTrackRequest      out: -
//   kVideoTakeFrame in: VideoTakeFrameRequest     out: VideoTakeFrameReply
//   kVideoStats     in: -                         out: VideoWardenStats

#ifndef SRC_WARDENS_VIDEO_WARDEN_H_
#define SRC_WARDENS_VIDEO_WARDEN_H_

#include <map>
#include <string>

#include "src/core/odyssey_client.h"
#include "src/core/warden.h"
#include "src/servers/video_server.h"

namespace odyssey {

// Tsop opcodes for /odyssey/video objects.
enum VideoTsopOpcode : int {
  kVideoOpen = 1,
  kVideoSetTrack = 2,
  kVideoTakeFrame = 3,
  kVideoStats = 4,
};

inline constexpr int kVideoMaxTracks = 8;

// Reply to kVideoOpen: the movie's metadata, including the bandwidth each
// track requires (the player computes its windows of tolerance from these).
struct VideoMetaReply {
  double fps = 0.0;
  int frame_count = 0;
  int track_count = 0;
  double frame_bytes[kVideoMaxTracks] = {};
  double fidelity[kVideoMaxTracks] = {};
  double required_bps[kVideoMaxTracks] = {};
};

struct VideoSetTrackRequest {
  int track = 0;
};

struct VideoTakeFrameRequest {
  int frame = 0;  // absolute display index (wraps for looping playback)
};

struct VideoTakeFrameReply {
  bool present = false;
  int track = -1;
  double fidelity = 0.0;
};

struct VideoWardenStats {
  int frames_fetched = 0;
  int frames_discarded_late = 0;     // arrived after their display deadline
  int frames_discarded_upgrade = 0;  // low-fidelity prefetch dropped on upgrade
  int frames_skipped = 0;            // proactively skipped to stay on time
  int fetch_failures = 0;            // read-ahead batches lost to transport failure
};

class VideoWarden : public Warden {
 public:
  // Frames fetched per read-ahead batch; one batch of JPEG(99) frames makes
  // a ~56 KB transfer, amortizing the request round trip to under 5%.
  static constexpr int kBatchFrames = 5;
  // Maximum frames buffered ahead of the display position.
  static constexpr int kPrefetchDepth = 12;
  // Pause before read-ahead resumes after a failed batch, so a dead link is
  // probed rather than hammered.
  static constexpr Duration kFetchRetryPause = 500 * kMillisecond;

  explicit VideoWarden(VideoServer* server) : Warden("video"), server_(server) {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override;

  // Required bandwidth for a track: frame bytes * fps inflated by the batch
  // protocol's round-trip overhead.
  static double RequiredBandwidth(double frame_bytes, double fps);

 private:
  struct BufferedFrame {
    int track = 0;
    double fidelity = 0.0;
  };

  struct Session {
    AppId app = 0;
    MovieMeta meta;
    Endpoint* endpoint = nullptr;
    bool loop = false;
    int current_track = 0;
    int next_fetch = 0;    // next absolute frame index to read ahead
    int display_pos = 0;   // frames below this are stale
    bool fetch_in_flight = false;
    double last_batch_seconds = 0.0;  // duration of the last read-ahead batch
    std::map<int, BufferedFrame> buffer;
    VideoWardenStats stats;
  };

  void HandleOpen(AppId app, const std::string& movie, TsopCallback done);
  void HandleSetTrack(Session& session, int track);
  void HandleTakeFrame(Session& session, int frame, TsopCallback done);
  void PumpReadAhead(Session& session);

  VideoServer* server_;
  std::map<AppId, Session> sessions_;
};

}  // namespace odyssey

#endif  // SRC_WARDENS_VIDEO_WARDEN_H_

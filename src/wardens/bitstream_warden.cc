#include "src/wardens/bitstream_warden.h"

#include <utility>

#include "src/core/tsop_codec.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

void BitstreamWarden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                           TsopCallback done) {
  (void)path;
  switch (opcode) {
    case kBitstreamStart: {
      BitstreamParams params;
      if (!UnpackStruct(in, &params)) {
        done(InvalidArgumentError("bad bitstream params"), "");
        return;
      }
      Session& session = sessions_[app];
      if (session.endpoint == nullptr) {
        session.endpoint = client()->OpenConnection(app, "bitstream");
      }
      session.target_bps = params.target_bps;
      if (params.window_bytes > 0.0) {
        session.window_bytes = params.window_bytes;
      } else if (params.target_bps > 0.0) {
        // A paced consumer reads in chunks sized to its rate (about half a
        // second of data), keeping its consumption visible to the viceroy's
        // recent-use accounting between reads.
        const double paced = params.target_bps * 0.5;
        const double floor_bytes = 8.0 * 1024.0;
        session.window_bytes = paced < floor_bytes          ? floor_bytes
                               : paced > kDefaultWindowBytes ? kDefaultWindowBytes
                                                             : paced;
      } else {
        session.window_bytes = kDefaultWindowBytes;
      }
      const bool was_running = session.running;
      session.running = true;
      ODY_TRACE_INSTANT1(client()->sim()->trace(), kWarden, "bitstream_start",
                         client()->sim()->now(), app, "target_bps", session.target_bps);
      done(OkStatus(), PackStruct(BitstreamStarted{session.endpoint->id()}));
      if (!was_running) {
        // Prime the round-trip estimate, then stream.
        session.endpoint->Ping([this, app] { PumpStream(app); });
      }
      return;
    }
    case kBitstreamStop: {
      auto it = sessions_.find(app);
      if (it == sessions_.end()) {
        done(NotFoundError("no bitstream session"), "");
        return;
      }
      it->second.running = false;
      ODY_TRACE_INSTANT1(client()->sim()->trace(), kWarden, "bitstream_stop",
                         client()->sim()->now(), app, "bytes_consumed",
                         it->second.bytes_consumed);
      done(OkStatus(), PackStruct(BitstreamTotals{it->second.bytes_consumed}));
      return;
    }
    default:
      done(UnsupportedError("unknown bitstream tsop"), "");
      return;
  }
}

void BitstreamWarden::PumpStream(AppId app) {
  auto it = sessions_.find(app);
  if (it == sessions_.end() || !it->second.running) {
    return;
  }
  const Time start = client()->sim()->now();
  // Modest per-window service time at the server, jittered per trial.
  const auto service = static_cast<Duration>(
      3.0 * static_cast<double>(kMillisecond) * client()->sim()->rng().JitterFactor(0.3));
  client()->sim()->Schedule(service, [this, app, start] {
    auto sit = sessions_.find(app);
    if (sit == sessions_.end() || !sit->second.running) {
      return;
    }
    sit->second.endpoint->FetchWindow(sit->second.window_bytes, [this, app, start] {
      auto again = sessions_.find(app);
      if (again == sessions_.end() || !again->second.running) {
        return;
      }
      Session& s = again->second;
      s.bytes_consumed += s.window_bytes;
      if (s.target_bps <= 0.0) {
        PumpStream(app);  // consume as fast as possible
        return;
      }
      // Pace consumption: each window should occupy window/target seconds
      // of wall-clock; sleep off whatever the transfer did not use.  The
      // consumer's scheduling is not metronomic, so the budget jitters
      // slightly per cycle.
      const Duration budget = SecondsToDuration(
          s.window_bytes / s.target_bps * client()->sim()->rng().JitterFactor(0.02));
      const Duration used = client()->sim()->now() - start;
      const Duration gap = budget > used ? budget - used : 0;
      client()->sim()->Schedule(gap, [this, app] { PumpStream(app); });
    });
  });
}

}  // namespace odyssey

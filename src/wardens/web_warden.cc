#include "src/wardens/web_warden.h"

#include <utility>

#include "src/core/tsop_codec.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

void WebWarden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                     TsopCallback done) {
  (void)path;
  switch (opcode) {
    case kWebOpen: {
      Session& session = sessions_[app];
      session.url = in;
      if (session.endpoint == nullptr) {
        session.endpoint = client()->OpenConnection(app, "distillation");
      }
      session.level = WebFidelity::kFullQuality;

      DistillationServer::DistillReply probe;
      WebSessionInfo info;
      int index = 0;
      for (const WebFidelity level : kAllWebFidelities) {
        if (const Status status = server_->Distill(in, level, &probe); !status.ok()) {
          sessions_.erase(app);
          done(status, "");
          return;
        }
        info.level_bytes[index] = probe.bytes;
        info.level_fidelity[index] = probe.fidelity;
        ++index;
      }
      info.original_bytes = info.level_bytes[0];
      done(OkStatus(), PackStruct(info));
      return;
    }
    case kWebSetFidelity: {
      auto it = sessions_.find(app);
      WebSetFidelityRequest request;
      if (it == sessions_.end() || !UnpackStruct(in, &request) || request.level < 0 ||
          request.level > 3) {
        done(InvalidArgumentError("bad set-fidelity request"), "");
        return;
      }
      it->second.level = static_cast<WebFidelity>(request.level);
      ODY_TRACE_INSTANT1(client()->sim()->trace(), kWarden, "web_set_fidelity",
                         client()->sim()->now(), app, "level", request.level);
      done(OkStatus(), "");
      return;
    }
    case kWebFetch: {
      auto it = sessions_.find(app);
      if (it == sessions_.end()) {
        done(NotFoundError("no open web session"), "");
        return;
      }
      Session& session = it->second;
      DistillationServer::DistillReply reply;
      if (const Status status = server_->Distill(session.url, session.level, &reply);
          !status.ok()) {
        done(status, "");
        return;
      }
      WebFetchReply result{reply.bytes, reply.fidelity};
      session.endpoint->Fetch(reply.bytes, reply.compute,
                              [result, done = std::move(done)](Status status) {
                                // A transport failure surfaces to the
                                // cellophane, which decides whether to retry
                                // at lower fidelity or report the page dead.
                                done(status, status.ok() ? PackStruct(result) : "");
                              });
      return;
    }
    case kWebOpenPage:
      HandleOpenPage(app, in, std::move(done));
      return;
    case kWebFetchPage:
      HandleFetchPage(app, std::move(done));
      return;
    default:
      done(UnsupportedError("unknown web tsop"), "");
      return;
  }
}

void WebWarden::HandleOpenPage(AppId app, const std::string& url, TsopCallback done) {
  Session& session = sessions_[app];
  session.url = url;
  session.is_page = true;
  if (session.endpoint == nullptr) {
    session.endpoint = client()->OpenConnection(app, "distillation");
  }
  session.level = WebFidelity::kFullQuality;

  WebPageInfo info;
  int index = 0;
  for (const WebFidelity level : kAllWebFidelities) {
    DistillationServer::PageReply probe;
    if (const Status status = server_->DistillPage(url, level, &probe); !status.ok()) {
      sessions_.erase(app);
      done(status, "");
      return;
    }
    info.html_bytes = probe.html_bytes;
    info.image_count = probe.image_count;
    info.level_total_bytes[index] = probe.html_bytes + probe.image_bytes;
    ++index;
  }
  done(OkStatus(), PackStruct(info));
}

void WebWarden::HandleFetchPage(AppId app, TsopCallback done) {
  auto it = sessions_.find(app);
  if (it == sessions_.end() || !it->second.is_page) {
    done(NotFoundError("no open web page session"), "");
    return;
  }
  Session& session = it->second;
  DistillationServer::PageReply reply;
  if (const Status status = server_->DistillPage(session.url, session.level, &reply);
      !status.ok()) {
    done(status, "");
    return;
  }
  // Markup first — it must arrive reliably and at full fidelity — then the
  // distilled images as a second transfer.
  const WebPageFetchReply result{reply.html_bytes, reply.image_bytes, reply.fidelity};
  Endpoint* endpoint = session.endpoint;
  endpoint->Fetch(reply.html_bytes, reply.compute,
                  [endpoint, image_bytes = reply.image_bytes, result,
                   done = std::move(done)](Status status) mutable {
                    if (!status.ok()) {
                      done(status, "");
                      return;
                    }
                    endpoint->Fetch(image_bytes, 0,
                                    [result, done = std::move(done)](Status image_status) {
                                      done(image_status,
                                           image_status.ok() ? PackStruct(result) : "");
                                    });
                  });
}

}  // namespace odyssey

#include "src/wardens/speech_warden.h"

#include <utility>

#include "src/core/tsop_codec.h"
#include "src/servers/calibration.h"
#include "src/trace/trace_macros.h"

namespace odyssey {
namespace {

// Scales a recognition compute cost by a vocabulary's factor.
Duration ScaleByVocabulary(Duration compute, int vocabulary) {
  return static_cast<Duration>(static_cast<double>(compute) *
                               kSpeechVocabularies[vocabulary].compute_factor);
}

}  // namespace

const char* SpeechModeName(SpeechMode mode) {
  switch (mode) {
    case SpeechMode::kAdaptive:
      return "Odyssey";
    case SpeechMode::kAlwaysHybrid:
      return "Always Hybrid";
    case SpeechMode::kAlwaysRemote:
      return "Always Remote";
    case SpeechMode::kAlwaysLocal:
      return "Always Local";
  }
  return "Unknown";
}

std::vector<ShipCandidate> SpeechWarden::Candidates(double raw_bytes, int vocabulary) {
  const double compressed = JanusServer::CompressedBytes(raw_bytes);
  const Duration recognize_remote = ScaleByVocabulary(kSpeechRecognizeServer, vocabulary);
  const Duration recognize_local = ScaleByVocabulary(kSpeechRecognizeLocal, vocabulary);
  return {
      // Hybrid: first pass locally, ship the compressed form, recognize
      // remotely.
      ShipCandidate{"hybrid", kSpeechPreprocessLocal, recognize_remote, compressed, 0.0},
      // Remote: ship the raw utterance, both passes on the server.
      ShipCandidate{"remote", 0, kSpeechPreprocessServer + recognize_remote, raw_bytes, 0.0},
      // Local: everything on the slow client CPU; works disconnected.
      ShipCandidate{"local", kSpeechPreprocessLocal + recognize_local, 0, 0.0, 0.0},
  };
}

SpeechMode SpeechWarden::AdaptivePlan(double raw_bytes, double bandwidth_bps, Duration rtt) {
  if (bandwidth_bps < kSpeechDisconnectedBps) {
    return SpeechMode::kAlwaysLocal;
  }
  // Between the network plans, let the generic planner decide; local only
  // wins under (near-)disconnection, where its severe CPU cost is the sole
  // option (§5.3).
  const std::vector<ShipCandidate> candidates = Candidates(raw_bytes, /*vocabulary=*/0);
  const Duration hybrid = ShipPlanner::Predict(candidates[0], bandwidth_bps, rtt);
  const Duration remote = ShipPlanner::Predict(candidates[1], bandwidth_bps, rtt);
  return hybrid <= remote ? SpeechMode::kAlwaysHybrid : SpeechMode::kAlwaysRemote;
}

int SpeechWarden::ChooseVocabulary(SpeechMode plan, double raw_bytes, double goal_seconds,
                                   double bandwidth_bps, Duration rtt) {
  if (goal_seconds <= 0.0) {
    return 0;  // no goal: full fidelity
  }
  const Duration goal = SecondsToDuration(goal_seconds);
  const int candidate_index = plan == SpeechMode::kAlwaysHybrid   ? 0
                              : plan == SpeechMode::kAlwaysRemote ? 1
                                                                  : 2;
  const int vocabularies = static_cast<int>(std::size(kSpeechVocabularies));
  for (int vocab = 0; vocab < vocabularies; ++vocab) {
    const std::vector<ShipCandidate> candidates = Candidates(raw_bytes, vocab);
    if (ShipPlanner::Predict(candidates[candidate_index], bandwidth_bps, rtt) <= goal) {
      return vocab;
    }
  }
  return vocabularies - 1;  // even tiny misses the goal; degrade fully
}

SpeechWarden::Session& SpeechWarden::SessionFor(AppId app) {
  Session& session = sessions_[app];
  if (session.endpoint == nullptr) {
    session.endpoint = client()->OpenConnection(app, "janus");
  }
  return session;
}

void SpeechWarden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                        TsopCallback done) {
  (void)path;
  switch (opcode) {
    case kSpeechSetMode: {
      SpeechSetModeRequest request;
      if (!UnpackStruct(in, &request) || request.mode < 0 || request.mode > 3) {
        done(InvalidArgumentError("bad set-mode request"), "");
        return;
      }
      SessionFor(app).mode = static_cast<SpeechMode>(request.mode);
      done(OkStatus(), "");
      return;
    }
    case kSpeechRecognize: {
      SpeechUtterance utterance;
      if (!UnpackStruct(in, &utterance) || utterance.raw_bytes <= 0.0) {
        done(InvalidArgumentError("bad utterance"), "");
        return;
      }
      Recognize(app, SessionFor(app), utterance, std::move(done));
      return;
    }
    case kSpeechLastPlan: {
      done(OkStatus(), PackStruct(SpeechPlanReply{SessionFor(app).last_plan}));
      return;
    }
    default:
      done(UnsupportedError("unknown speech tsop"), "");
      return;
  }
}

void SpeechWarden::Recognize(AppId app, Session& session, const SpeechUtterance& utterance,
                             TsopCallback done) {
  const double raw_bytes = utterance.raw_bytes;
  const double bandwidth = client()->CurrentLevel(app, ResourceId::kNetworkBandwidth);
  const auto rtt =
      static_cast<Duration>(client()->CurrentLevel(app, ResourceId::kNetworkLatency));

  SpeechMode plan = session.mode;
  if (plan == SpeechMode::kAdaptive) {
    if (!client()->HasBandwidthEstimate()) {
      // No estimate yet: hybrid is the safe bootstrap — it minimizes
      // network dependence while still producing the observations that
      // estimation needs.
      plan = SpeechMode::kAlwaysHybrid;
    } else {
      plan = AdaptivePlan(raw_bytes, bandwidth, rtt);
    }
  }
  const int vocabulary =
      ChooseVocabulary(plan, raw_bytes, utterance.latency_goal_seconds, bandwidth, rtt);
  session.last_plan = static_cast<int>(plan);
  const SpeechResult result{kSpeechVocabularies[vocabulary].fidelity, static_cast<int>(plan),
                            vocabulary};
  Simulation* sim = client()->sim();
  ODY_TRACE_INSTANT2(sim->trace(), kWarden, "speech_plan", sim->now(), app, "mode",
                     static_cast<int>(plan), "fidelity", result.fidelity);

  switch (plan) {
    case SpeechMode::kAlwaysHybrid: {
      // First pass on the local, slower CPU; ship the compressed utterance;
      // remaining passes on the server.
      const double compressed = JanusServer::CompressedBytes(raw_bytes);
      sim->Schedule(server_->PreprocessLocal(), [this, app, compressed, vocabulary, result,
                                                 done = std::move(done)]() mutable {
        auto it = sessions_.find(app);
        if (it == sessions_.end()) {
          done(NotFoundError("speech session closed"), "");
          return;
        }
        auto guarded = GuardNetworkPlan(app, result, std::move(done));
        it->second.endpoint->Send(compressed,
                                  ScaleByVocabulary(server_->RecognizeRemote(), vocabulary),
                                  guarded);
      });
      return;
    }
    case SpeechMode::kAlwaysRemote: {
      // Ship the raw utterance; both passes on the server.
      auto guarded = GuardNetworkPlan(app, result, std::move(done));
      session.endpoint->Send(
          raw_bytes,
          server_->PreprocessRemote() + ScaleByVocabulary(server_->RecognizeRemote(), vocabulary),
          guarded);
      return;
    }
    case SpeechMode::kAlwaysLocal: {
      sim->Schedule(
          server_->PreprocessLocal() + ScaleByVocabulary(server_->RecognizeLocal(), vocabulary),
          [result, done = std::move(done)] { done(OkStatus(), PackStruct(result)); });
      return;
    }
    case SpeechMode::kAdaptive:
      break;  // unreachable: resolved above
  }
  done(InvalidArgumentError("unresolved speech plan"), "");
}

Endpoint::StatusDone SpeechWarden::GuardNetworkPlan(AppId app, const SpeechResult& result,
                                                    TsopCallback done) {
  // Wraps a network plan's completion with a watchdog: if the client drops
  // into a radio shadow mid-utterance, the stalled transfer is abandoned
  // after kSpeechNetworkTimeout and the local Janus recognizes the
  // utterance instead (§5.3's extreme case).  A transport failure reported
  // by the endpoint's retry machinery takes the same local path without
  // waiting the watchdog out.  Exactly one path reports the result.
  auto state = std::make_shared<GuardState>();
  state->done = std::move(done);
  Simulation* sim = client()->sim();
  sim->Schedule(kSpeechNetworkTimeout, [this, app, state] {
    if (state->resolved) {
      return;
    }
    FallBackToLocal(app, state);
  });
  return [this, app, state, result](Status status) {
    if (state->resolved) {
      return;  // the watchdog already went local; drop the late reply
    }
    if (!status.ok()) {
      FallBackToLocal(app, state);
      return;
    }
    state->resolved = true;
    state->done(OkStatus(), PackStruct(result));
  };
}

void SpeechWarden::FallBackToLocal(AppId app, const std::shared_ptr<GuardState>& state) {
  state->resolved = true;
  auto it = sessions_.find(app);
  if (it != sessions_.end()) {
    it->second.last_plan = static_cast<int>(SpeechMode::kAlwaysLocal);
    ++it->second.network_timeouts;
  }
  client()->sim()->Schedule(server_->RecognizeLocal(), [state] {
    state->done(OkStatus(), PackStruct(SpeechResult{
                                1.0, static_cast<int>(SpeechMode::kAlwaysLocal), 0}));
  });
}

}  // namespace odyssey

#include "src/wardens/file_warden.h"

#include <utility>

#include "src/core/tsop_codec.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

const char* FileConsistencyName(FileConsistency level) {
  switch (level) {
    case FileConsistency::kStrict:
      return "Strict";
    case FileConsistency::kPeriodic:
      return "Periodic";
    case FileConsistency::kOptimistic:
      return "Optimistic";
    case FileConsistency::kAdaptive:
      return "Odyssey";
  }
  return "Unknown";
}

double FileConsistencyFidelity(FileConsistency level) {
  switch (level) {
    case FileConsistency::kStrict:
      return 1.0;
    case FileConsistency::kPeriodic:
      return 0.6;
    case FileConsistency::kOptimistic:
      return 0.3;
    case FileConsistency::kAdaptive:
      return 0.0;  // resolved per read
  }
  return 0.0;
}

FileConsistency FileWarden::AdaptiveLevel(double bandwidth_bps) {
  if (bandwidth_bps >= kStrictBandwidthFloor) {
    return FileConsistency::kStrict;
  }
  if (bandwidth_bps >= kPeriodicBandwidthFloor) {
    return FileConsistency::kPeriodic;
  }
  return FileConsistency::kOptimistic;
}

Endpoint* FileWarden::EndpointFor(AppId app) {
  auto it = endpoints_.find(app);
  if (it == endpoints_.end()) {
    it = endpoints_.emplace(app, client()->OpenConnection(app, "file-server")).first;
  }
  return it->second;
}

FileConsistency FileWarden::EffectiveLevel(AppId app) const {
  const auto it = level_.find(app);
  const FileConsistency configured =
      it == level_.end() ? FileConsistency::kAdaptive : it->second;
  if (configured != FileConsistency::kAdaptive) {
    return configured;
  }
  return AdaptiveLevel(client()->CurrentLevel(app, ResourceId::kNetworkBandwidth));
}

void FileWarden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                      TsopCallback done) {
  switch (opcode) {
    case kFileRead:
      ServeRead(app, path, std::move(done));
      return;
    case kFileSetConsistency: {
      FileSetConsistencyRequest request;
      if (!UnpackStruct(in, &request) || request.level < 0 || request.level > 3) {
        done(InvalidArgumentError("bad consistency level"), "");
        return;
      }
      level_[app] = static_cast<FileConsistency>(request.level);
      ODY_TRACE_INSTANT1(client()->sim()->trace(), kWarden, "file_consistency",
                         client()->sim()->now(), app, "level", request.level);
      done(OkStatus(), "");
      return;
    }
    case kFileStats:
      done(OkStatus(), PackStruct(stats_));
      return;
    default:
      done(UnsupportedError("unknown files tsop"), "");
      return;
  }
}

void FileWarden::Read(AppId app, const std::string& path, ReadCallback done) {
  ServeRead(app, path, [path, done = std::move(done)](Status status, std::string out) {
    if (!status.ok()) {
      done(status, "");
      return;
    }
    FileReadReply reply;
    if (!UnpackStruct(out, &reply)) {
      done(InvalidArgumentError("malformed file read reply"), "");
      return;
    }
    done(OkStatus(),
         "file:" + path + "@v" + std::to_string(reply.version));
  });
}

void FileWarden::ServeRead(AppId app, const std::string& path, TsopCallback done) {
  ++stats_.reads;
  const auto cached = cache_entries_.find(path);
  if (cached == cache_entries_.end()) {
    ++stats_.misses;
    FetchAndServe(app, path, /*count_refetch=*/false, std::move(done));
    return;
  }

  const FileConsistency level = EffectiveLevel(app);
  const Time now = client()->sim()->now();
  const bool must_validate =
      level == FileConsistency::kStrict ||
      (level == FileConsistency::kPeriodic && now - cached->second.validated_at > kPeriodicTtl);

  if (!must_validate) {
    // Serve the cached copy as-is.  If the server has moved on, this read
    // exposed stale data — the price of the lower consistency fidelity.
    ++stats_.cache_hits;
    FileInfo current;
    if (server_->Stat(path, &current).ok() && current.version != cached->second.version) {
      ++stats_.stale_serves;
    }
    TouchLru(path);
    FileReadReply reply{cached->second.bytes, cached->second.version,
                       FileConsistencyFidelity(level), true, false};
    done(OkStatus(), PackStruct(reply));
    return;
  }

  // Validate: a small exchange comparing versions with the server.
  ++stats_.validations;
  Endpoint* endpoint = EndpointFor(app);
  endpoint->Call(kControlMessageBytes, kControlMessageBytes, server_->ValidateCompute(),
                 [this, app, path, level, done = std::move(done)]() mutable {
                   FileInfo current;
                   const Status status = server_->Stat(path, &current);
                   if (!status.ok()) {
                     done(status, "");
                     return;
                   }
                   auto it = cache_entries_.find(path);
                   if (it != cache_entries_.end() && it->second.version == current.version) {
                     ++stats_.cache_hits;
                     it->second.validated_at = client()->sim()->now();
                     TouchLru(path);
                     FileReadReply reply{it->second.bytes, it->second.version,
                                        FileConsistencyFidelity(level), true, true};
                     done(OkStatus(), PackStruct(reply));
                     return;
                   }
                   // Stale (or concurrently evicted): refetch the new version.
                   ++stats_.refetches;
                   FetchAndServe(app, path, /*count_refetch=*/true, std::move(done));
                 });
}

void FileWarden::FetchAndServe(AppId app, const std::string& path, bool count_refetch,
                               TsopCallback done) {
  (void)count_refetch;  // accounting happened at the call site
  FileInfo info;
  const Status status = server_->Stat(path, &info);
  if (!status.ok()) {
    done(status, "");
    return;
  }
  Endpoint* endpoint = EndpointFor(app);
  endpoint->Fetch(info.bytes, server_->FetchCompute(),
                  [this, app, path, info, done = std::move(done)]() mutable {
                    InsertWithEviction(path, info);
                    const FileConsistency level = EffectiveLevel(app);
                    FileReadReply reply{info.bytes, info.version,
                                       FileConsistencyFidelity(level), false, true};
                    done(OkStatus(), PackStruct(reply));
                  });
}

void FileWarden::TouchLru(const std::string& path) {
  auto it = cache_entries_.find(path);
  if (it == cache_entries_.end()) {
    return;
  }
  lru_.erase(it->second.lru_position);
  lru_.push_front(path);
  it->second.lru_position = lru_.begin();
}

void FileWarden::InsertWithEviction(const std::string& path, const FileInfo& info) {
  const double kb = info.bytes / 1024.0;
  // Replace any existing entry first.
  auto existing = cache_entries_.find(path);
  if (existing != cache_entries_.end()) {
    if (cache_ != nullptr) {
      cache_->Release(existing->second.bytes / 1024.0);
    }
    lru_.erase(existing->second.lru_position);
    cache_entries_.erase(existing);
  }
  if (cache_ != nullptr) {
    // Evict least-recently-used files until the new one fits.
    bool reserved = cache_->Reserve(kb);
    while (!reserved && !lru_.empty()) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      auto vit = cache_entries_.find(victim);
      if (vit != cache_entries_.end()) {
        cache_->Release(vit->second.bytes / 1024.0);
        cache_entries_.erase(vit);
        ++stats_.evictions;
      }
      reserved = cache_->Reserve(kb);
    }
    if (!reserved) {
      return;  // larger than the whole cache; serve uncached
    }
  }
  lru_.push_front(path);
  cache_entries_[path] =
      CachedFile{info.bytes, info.version, client()->sim()->now(), lru_.begin()};
}

}  // namespace odyssey

// The speech warden (§5.3).
//
// The front end writes a raw utterance; the warden, using the current
// bandwidth estimate, decides whether to perform the first recognition pass
// on the local, slower CPU (shipping the 5:1-compressed result) or to ship
// the larger raw utterance to the remote Janus server.  In the extreme case
// of disconnection, the local Janus recognizes the utterance at severe CPU
// cost.
//
// Tsops:
//   kSpeechSetMode   in: SpeechSetModeRequest   out: -
//   kSpeechRecognize in: SpeechUtterance        out: SpeechResult
//   kSpeechLastPlan  in: -                      out: SpeechPlanReply

#ifndef SRC_WARDENS_SPEECH_WARDEN_H_
#define SRC_WARDENS_SPEECH_WARDEN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/odyssey_client.h"
#include "src/core/ship_planner.h"
#include "src/core/warden.h"
#include "src/servers/janus_server.h"

namespace odyssey {

enum SpeechTsopOpcode : int {
  kSpeechSetMode = 1,
  kSpeechRecognize = 2,
  kSpeechLastPlan = 3,
};

// How the warden routes recognition work.
enum class SpeechMode : int {
  kAdaptive = 0,      // pick hybrid/remote/local from the bandwidth estimate
  kAlwaysHybrid = 1,  // local first pass, ship compressed
  kAlwaysRemote = 2,  // ship raw utterance
  kAlwaysLocal = 3,   // full local recognition (disconnected operation)
};

const char* SpeechModeName(SpeechMode mode);

struct SpeechSetModeRequest {
  int mode = 0;
};

struct SpeechUtterance {
  double raw_bytes = 0.0;
  // Optional latency goal in seconds; when positive, the warden may lower
  // the recognition vocabulary (a fidelity level) to meet it.  Zero asks
  // for full fidelity regardless of time.
  double latency_goal_seconds = 0.0;
};

struct SpeechResult {
  double fidelity = 1.0;  // of the vocabulary used (see kSpeechVocabularies)
  int plan = 0;           // the SpeechMode actually executed (never kAdaptive)
  int vocabulary = 0;     // index into kSpeechVocabularies
};

struct SpeechPlanReply {
  int plan = 0;
};

class SpeechWarden : public Warden {
 public:
  explicit SpeechWarden(JanusServer* server) : Warden("speech"), server_(server) {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override;

  // The ship-data-versus-ship-computation decision, exposed for tests:
  // returns the mode the adaptive policy picks at |bandwidth_bps| availability
  // and |rtt| smoothed round trip.  Built on the generic ShipPlanner.
  static SpeechMode AdaptivePlan(double raw_bytes, double bandwidth_bps, Duration rtt);

  // The three shipping candidates (hybrid, remote, local) for an utterance
  // recognized with the given vocabulary.
  static std::vector<ShipCandidate> Candidates(double raw_bytes, int vocabulary);

  // The highest-fidelity vocabulary whose predicted recognition time under
  // |plan| meets |goal_seconds| (0 = no goal -> full vocabulary).
  static int ChooseVocabulary(SpeechMode plan, double raw_bytes, double goal_seconds,
                              double bandwidth_bps, Duration rtt);

 private:
  struct Session {
    Endpoint* endpoint = nullptr;
    SpeechMode mode = SpeechMode::kAdaptive;
    int last_plan = static_cast<int>(SpeechMode::kAlwaysHybrid);
    int network_timeouts = 0;  // watchdog fallbacks to local recognition
  };

  struct GuardState {
    bool resolved = false;
    TsopCallback done;
  };

  Session& SessionFor(AppId app);
  void Recognize(AppId app, Session& session, const SpeechUtterance& utterance,
                 TsopCallback done);
  // Wraps a network plan completion with the radio-shadow watchdog; an
  // explicit transport failure falls back to local recognition immediately
  // instead of waiting the watchdog out.
  Endpoint::StatusDone GuardNetworkPlan(AppId app, const SpeechResult& result,
                                        TsopCallback done);
  // Recognizes locally after the network plan for |app| was abandoned.
  void FallBackToLocal(AppId app, const std::shared_ptr<GuardState>& state);

  JanusServer* server_;
  std::map<AppId, Session> sessions_;
};

}  // namespace odyssey

#endif  // SRC_WARDENS_SPEECH_WARDEN_H_

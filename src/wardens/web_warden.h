// The Web warden (§5.2).
//
// The cellophane transforms browser HTTP requests into operations on
// Odyssey Web objects; the warden forwards them over the client's mobile
// connection to a distillation server, which fetches the object from the
// origin Web server, distills it to the requested fidelity, and returns the
// result.  The warden provides a tsop to set the fidelity level.
//
// Tsops:
//   kWebOpen        in: url (raw string)        out: WebSessionInfo
//   kWebSetFidelity in: WebSetFidelityRequest   out: -
//   kWebFetch       in: -                       out: WebFetchReply

#ifndef SRC_WARDENS_WEB_WARDEN_H_
#define SRC_WARDENS_WEB_WARDEN_H_

#include <map>
#include <string>

#include "src/core/odyssey_client.h"
#include "src/core/warden.h"
#include "src/servers/distillation_server.h"

namespace odyssey {

enum WebTsopOpcode : int {
  kWebOpen = 1,
  kWebSetFidelity = 2,
  kWebFetch = 3,
  kWebOpenPage = 4,
  kWebFetchPage = 5,
};

// Reply to kWebOpen: the distilled size of each fidelity level for this
// object, so the cellophane can predict fetch times.
struct WebSessionInfo {
  double original_bytes = 0.0;
  double level_bytes[4] = {};
  double level_fidelity[4] = {};
};

struct WebSetFidelityRequest {
  int level = 0;  // index into kAllWebFidelities
};

struct WebFetchReply {
  double bytes = 0.0;
  double fidelity = 0.0;
};

// Reply to kWebOpenPage: enough for the cellophane to predict page fetch
// times at every level (markup never distills; images do).
struct WebPageInfo {
  double html_bytes = 0.0;
  int image_count = 0;
  double level_total_bytes[4] = {};  // html + distilled images per level
};

struct WebPageFetchReply {
  double html_bytes = 0.0;
  double image_bytes = 0.0;
  double fidelity = 0.0;  // of the images; markup is always full fidelity
};

class WebWarden : public Warden {
 public:
  explicit WebWarden(DistillationServer* server) : Warden("web"), server_(server) {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override;

 private:
  struct Session {
    std::string url;
    Endpoint* endpoint = nullptr;
    WebFidelity level = WebFidelity::kFullQuality;
    bool is_page = false;
  };

  void HandleOpenPage(AppId app, const std::string& url, TsopCallback done);
  void HandleFetchPage(AppId app, TsopCallback done);

  DistillationServer* server_;
  std::map<AppId, Session> sessions_;
};

}  // namespace odyssey

#endif  // SRC_WARDENS_WEB_WARDEN_H_

#include "src/wardens/video_warden.h"

#include <cmath>
#include <utility>

#include "src/core/tsop_codec.h"
#include "src/servers/calibration.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

double VideoWarden::RequiredBandwidth(double frame_bytes, double fps) {
  // A batch of kBatchFrames frames must transfer within kBatchFrames frame
  // periods including one protocol round trip and the server's batch
  // lookup:
  //   batch_bytes / B + rtt + lookup <= batch_frames / fps
  // so B >= fps * frame_bytes / (1 - fps * (rtt + lookup) / batch_frames).
  const double fixed_s = DurationToSeconds(21 * kMillisecond + kVideoFrameCompute);
  const double overhead = 1.0 - fps * fixed_s / static_cast<double>(kBatchFrames);
  return fps * frame_bytes / (overhead > 0.1 ? overhead : 0.1);
}

void VideoWarden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                       TsopCallback done) {
  (void)path;  // sessions are per application; the movie is named at open
  switch (opcode) {
    case kVideoOpen:
      HandleOpen(app, in, std::move(done));
      return;
    case kVideoSetTrack: {
      auto it = sessions_.find(app);
      VideoSetTrackRequest request;
      if (it == sessions_.end() || !UnpackStruct(in, &request)) {
        done(InvalidArgumentError("bad set-track request"), "");
        return;
      }
      if (request.track < 0 || request.track >= static_cast<int>(it->second.meta.tracks.size())) {
        done(InvalidArgumentError("no such track"), "");
        return;
      }
      HandleSetTrack(it->second, request.track);
      done(OkStatus(), "");
      return;
    }
    case kVideoTakeFrame: {
      auto it = sessions_.find(app);
      VideoTakeFrameRequest request;
      if (it == sessions_.end() || !UnpackStruct(in, &request)) {
        done(InvalidArgumentError("bad take-frame request"), "");
        return;
      }
      HandleTakeFrame(it->second, request.frame, std::move(done));
      return;
    }
    case kVideoStats: {
      auto it = sessions_.find(app);
      if (it == sessions_.end()) {
        done(NotFoundError("no open movie"), "");
        return;
      }
      done(OkStatus(), PackStruct(it->second.stats));
      return;
    }
    default:
      done(UnsupportedError("unknown video tsop"), "");
      return;
  }
}

void VideoWarden::HandleOpen(AppId app, const std::string& movie, TsopCallback done) {
  MovieMeta meta;
  const Status status = server_->GetMeta(movie, &meta);
  if (!status.ok()) {
    done(status, "");
    return;
  }
  Session& session = sessions_[app];
  session.app = app;
  session.meta = meta;
  if (session.endpoint == nullptr) {
    session.endpoint = client()->OpenConnection(app, "video:" + movie);
  }
  session.current_track = 0;
  session.next_fetch = 0;
  session.display_pos = 0;
  session.buffer.clear();
  session.stats = VideoWardenStats{};

  VideoMetaReply reply;
  reply.fps = meta.fps;
  reply.frame_count = meta.frame_count;
  reply.track_count = static_cast<int>(meta.tracks.size());
  for (int i = 0; i < reply.track_count && i < kVideoMaxTracks; ++i) {
    reply.frame_bytes[i] = meta.tracks[i].frame_bytes;
    reply.fidelity[i] = meta.tracks[i].fidelity;
    reply.required_bps[i] = RequiredBandwidth(meta.tracks[i].frame_bytes, meta.fps);
  }
  done(OkStatus(), PackStruct(reply));
  PumpReadAhead(session);
}

void VideoWarden::HandleSetTrack(Session& session, int track) {
  const bool upgrade =
      session.meta.tracks[track].fidelity > session.meta.tracks[session.current_track].fidelity;
  session.current_track = track;
  ODY_TRACE_INSTANT2(client()->sim()->trace(), kWarden, "video_set_track",
                     client()->sim()->now(), session.app, "track", track, "fidelity",
                     session.meta.tracks[track].fidelity);
  if (upgrade) {
    // Discard prefetched frames of lower fidelity than the new track; they
    // will be refetched at the better quality.
    const double new_fidelity = session.meta.tracks[track].fidelity;
    int discarded = 0;
    for (auto it = session.buffer.begin(); it != session.buffer.end();) {
      if (it->second.fidelity < new_fidelity) {
        it = session.buffer.erase(it);
        ++discarded;
      } else {
        ++it;
      }
    }
    session.stats.frames_discarded_upgrade += discarded;
    // Rewind read-ahead to refill the gap left by the discard.
    int first_missing = session.display_pos;
    while (session.buffer.contains(first_missing)) {
      ++first_missing;
    }
    session.next_fetch = first_missing;
  }
  PumpReadAhead(session);
}

void VideoWarden::HandleTakeFrame(Session& session, int frame, TsopCallback done) {
  session.display_pos = frame + 1;
  VideoTakeFrameReply reply;
  const auto it = session.buffer.find(frame);
  if (it != session.buffer.end()) {
    reply.present = true;
    reply.track = it->second.track;
    reply.fidelity = it->second.fidelity;
  }
  // Frames at or before the display position are stale either way.
  session.buffer.erase(session.buffer.begin(), session.buffer.upper_bound(frame));
  if (session.next_fetch < session.display_pos) {
    session.next_fetch = session.display_pos;
  }
  done(OkStatus(), PackStruct(reply));
  PumpReadAhead(session);
}

void VideoWarden::PumpReadAhead(Session& session) {
  if (session.fetch_in_flight ||
      static_cast<int>(session.buffer.size()) >= kPrefetchDepth) {
    return;
  }
  const int track = session.current_track;
  // Aim the batch at deadlines it can actually meet: frames fetched now
  // arrive roughly one batch-duration from now, by which point the display
  // position will have advanced.  Skipping the frames in between is exactly
  // the paper's video adaptation ("responds by skipping frames, thus
  // displaying fewer frames per minute") and is what turns insufficient
  // bandwidth into drops rather than unbounded lag.
  int lead = 0;
  if (session.last_batch_seconds > 0.0) {
    lead = static_cast<int>(std::ceil(session.last_batch_seconds * session.meta.fps));
  }
  const int on_time = session.display_pos + lead;
  const int first = session.next_fetch > on_time ? session.next_fetch : on_time;
  const int skipped = first - session.next_fetch;
  if (skipped > 0 && session.next_fetch > 0) {
    session.stats.frames_skipped += skipped;
  }

  double batch_bytes = 0.0;
  Duration lookup = 0;
  for (int i = 0; i < kBatchFrames; ++i) {
    VideoServer::FrameReply frame;
    const int movie_frame = (first + i) % session.meta.frame_count;
    if (!server_->GetFrame(session.meta.name, track, movie_frame, &frame).ok()) {
      return;
    }
    batch_bytes += frame.bytes;
    // Per-frame lookups pipeline with transmission; only the first frame's
    // (jittered) lookup delays the batch.
    if (i == 0) {
      lookup = frame.compute;
    }
  }
  session.fetch_in_flight = true;
  const double fidelity = session.meta.tracks[track].fidelity;
  const Time batch_start = client()->sim()->now();
  // The server streams the batch continuously after the initial lookup, so
  // a batch is a single window with one request round trip — the cost
  // RequiredBandwidth budgets for.
  client()->sim()->Schedule(lookup, [this, batch_bytes, app = session.app, first, track,
                                     fidelity, batch_start] {
    auto sit = sessions_.find(app);
    if (sit == sessions_.end()) {
      return;
    }
    sit->second.endpoint->FetchWindow(batch_bytes, [this, app, first, track, fidelity,
                                                    batch_start](Status status) {
      auto it = sessions_.find(app);
      if (it == sessions_.end()) {
        return;
      }
      Session& s = it->second;
      s.fetch_in_flight = false;
      if (!status.ok()) {
        // The transport gave up on this batch.  The frames will be skipped
        // by deadline-aiming on the next pump; pause briefly so read-ahead
        // probes a dead link instead of hammering it.
        ++s.stats.fetch_failures;
        client()->sim()->Schedule(kFetchRetryPause, [this, app] {
          auto again = sessions_.find(app);
          if (again != sessions_.end() && !again->second.fetch_in_flight) {
            PumpReadAhead(again->second);
          }
        });
        return;
      }
      s.last_batch_seconds = DurationToSeconds(client()->sim()->now() - batch_start);
      s.stats.frames_fetched += kBatchFrames;
      for (int i = 0; i < kBatchFrames; ++i) {
        const int frame = first + i;
        if (frame < s.display_pos) {
          ++s.stats.frames_discarded_late;  // destined to be late; wasted work
        } else {
          s.buffer[frame] = BufferedFrame{track, fidelity};
        }
      }
      if (s.next_fetch < first + kBatchFrames) {
        s.next_fetch = first + kBatchFrames;
      }
      PumpReadAhead(s);
    });
  });
}

}  // namespace odyssey

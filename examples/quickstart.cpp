// Quickstart: the Odyssey API in one file.
//
// Builds a mobile client on an emulated network, registers an application,
// expresses a resource expectation (a window of tolerance on network
// bandwidth), and reacts to the upcall when a bandwidth step violates it —
// the request/notify/adapt loop at the heart of application-aware
// adaptation.
//
//   $ ./quickstart

#include <cstdio>
#include <memory>

#include "src/core/odyssey_client.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/trace/trace_session.h"

using namespace odyssey;

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));
  // One mobile client whose link replays a Step-Down waveform: 120 KB/s for
  // 30 s, then 40 KB/s.  ExperimentRig bundles the simulation, the link,
  // the viceroy (centralized strategy), the wardens, and the servers.
  ExperimentRig rig(/*seed=*/1, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace_session.recorder());
  rig.Replay(MakeStepDown(), /*prime=*/false);

  OdysseyClient& client = rig.client();
  const AppId app = client.RegisterApplication("quickstart");

  // Consume data through the bitstream warden so the viceroy has traffic to
  // observe — Odyssey's monitoring is passive.
  BitstreamParams params{0.0, 0.0};
  client.Tsop(app, "/odyssey/bitstream/stream", kBitstreamStart, PackStruct(params),
              [](Status status, std::string) {
                std::printf("[app] bitstream started: %s\n", status.ToString().c_str());
              });

  // After a few seconds of observation, express our expectation: we are
  // happy as long as at least 80 KB/s is available.
  rig.sim().Schedule(5 * kSecond, [&] {  // ody_lint: owned-capture
    ResourceDescriptor descriptor;
    descriptor.resource = ResourceId::kNetworkBandwidth;
    descriptor.lower = 80.0 * 1024.0;
    // ody_lint: owned-capture
    descriptor.handler = [&](RequestId request, ResourceId, double level) {
      std::printf("[app] t=%.1fs upcall on request %llu: bandwidth now %.1f KB/s"
                  " -- dropping fidelity\n",
                  DurationToSeconds(rig.sim().now()),
                  static_cast<unsigned long long>(request), level / 1024.0);
      // A real application would pick a new fidelity and re-register a
      // window appropriate to it (§4.3); we register a lower one.
      ResourceDescriptor revised;
      revised.resource = ResourceId::kNetworkBandwidth;
      revised.lower = 30.0 * 1024.0;
      revised.handler = [](RequestId, ResourceId, double) {};
      const RequestResult result = client.Request(app, revised);
      std::printf("[app] re-registered window [30 KB/s, inf): %s\n",
                  result.ok() ? "ok" : "out of bounds");
    };
    const RequestResult result = client.Request(app, descriptor);
    std::printf("[app] t=%.1fs registered window [80 KB/s, inf): %s (current %.1f KB/s)\n",
                DurationToSeconds(rig.sim().now()), result.ok() ? "ok" : "out of bounds",
                result.current_level / 1024.0);
  });

  // Periodically show what the viceroy believes.
  for (int t = 5; t <= 55; t += 10) {
    rig.sim().Schedule(t * kSecond, [&] {  // ody_lint: owned-capture
      std::printf("[viceroy] t=%.0fs availability for app: %.1f KB/s\n",
                  DurationToSeconds(rig.sim().now()),
                  client.CurrentLevel(app, ResourceId::kNetworkBandwidth) / 1024.0);
    });
  }

  rig.sim().RunUntil(kWaveformLength);
  std::printf("done: the step down at t=30s triggered exactly one upcall.\n");
  return trace_session.ExportOrWarn() ? 0 : 1;
}

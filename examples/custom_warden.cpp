// Writing a warden for a new data type (§3.2).
//
// "To fully support a new data type, an appropriate warden has to be
// written and incorporated into Odyssey at each client."  This example
// builds a warden for spatial data — topographic map tiles whose natural
// fidelity dimension is *resolution* (minimum feature size, §2.2) — and an
// application that pans across a map while adapting resolution to
// bandwidth, demonstrating everything a warden author touches:
//
//   * fidelity levels and their resource requirements,
//   * a server connection opened through the client (never directly),
//   * tsops for access and fidelity change,
//   * the file-style Read hook for byte-stream access,
//   * windows of tolerance registered by the application.
//
//   $ ./custom_warden

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "src/core/contract.h"
#include "src/core/odyssey_client.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/sim/simulation.h"
#include "src/strategies/centralized.h"
#include "src/trace/trace_session.h"
#include "src/tracemod/waveforms.h"

using namespace odyssey;

// ---------------------------------------------------------------------------
// The data type: map tiles at three resolutions.
// ---------------------------------------------------------------------------

struct MapLevel {
  const char* name;
  double tile_bytes;
  double fidelity;  // strictly increasing with quality (§6.1.2)
};

constexpr MapLevel kMapLevels[] = {
    {"10m contours", 48.0 * 1024.0, 1.0},
    {"30m contours", 12.0 * 1024.0, 0.5},
    {"90m shaded relief", 3.0 * 1024.0, 0.15},
};

enum MapTsop : int {
  kMapOpen = 1,        // in: region name      out: MapInfo
  kMapSetLevel = 2,    // in: MapSetLevel      out: -
  kMapFetchTile = 3,   // in: MapFetchTile     out: MapTileResult
};

struct MapInfo {
  int level_count = 0;
  double tile_bytes[8] = {};
  double fidelity[8] = {};
};

struct MapSetLevel {
  int level = 0;
};

struct MapFetchTile {
  int x = 0;
  int y = 0;
};

struct MapTileResult {
  double fidelity = 0.0;
  double bytes = 0.0;
};

// ---------------------------------------------------------------------------
// The warden: one per data type, installed at /odyssey/maps.
// ---------------------------------------------------------------------------

class MapWarden : public Warden {
 public:
  MapWarden() : Warden("maps") {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override {
    (void)path;
    switch (opcode) {
      case kMapOpen: {
        Session& session = sessions_[app];
        if (session.endpoint == nullptr) {
          // Wardens are entirely responsible for communicating with
          // servers; applications never contact them directly (§4.1).
          session.endpoint = client()->OpenConnection(app, "gis-server");
        }
        MapInfo info;
        info.level_count = static_cast<int>(std::size(kMapLevels));
        for (int i = 0; i < info.level_count; ++i) {
          info.tile_bytes[i] = kMapLevels[i].tile_bytes;
          info.fidelity[i] = kMapLevels[i].fidelity;
        }
        done(OkStatus(), PackStruct(info));
        return;
      }
      case kMapSetLevel: {
        MapSetLevel request;
        auto it = sessions_.find(app);
        if (it == sessions_.end() || !UnpackStruct(in, &request) || request.level < 0 ||
            request.level >= static_cast<int>(std::size(kMapLevels))) {
          done(InvalidArgumentError("bad level"), "");
          return;
        }
        it->second.level = request.level;
        done(OkStatus(), "");
        return;
      }
      case kMapFetchTile: {
        MapFetchTile request;
        auto it = sessions_.find(app);
        if (it == sessions_.end() || !UnpackStruct(in, &request)) {
          done(InvalidArgumentError("bad tile request"), "");
          return;
        }
        Session& session = it->second;
        const MapLevel& level = kMapLevels[session.level];
        const MapTileResult result{level.fidelity, level.tile_bytes};
        session.tiles_served++;
        session.endpoint->Fetch(level.tile_bytes, 5 * kMillisecond,
                                [result, done = std::move(done)] {
                                  done(OkStatus(), PackStruct(result));
                                });
        return;
      }
      default:
        done(UnsupportedError("unknown maps tsop"), "");
        return;
    }
  }

  // Byte-stream access: reading a tile path yields its metadata as text,
  // demonstrating the file-system integration path (§4.1).
  void Read(AppId app, const std::string& path, ReadCallback done) override {
    const auto it = sessions_.find(app);
    if (it == sessions_.end()) {
      done(NotFoundError("open a region first"), "");
      return;
    }
    const MapLevel& level = kMapLevels[it->second.level];
    done(OkStatus(), "tile " + path + " @ " + level.name);
  }

 private:
  struct Session {
    Endpoint* endpoint = nullptr;
    int level = 0;
    int tiles_served = 0;
  };

  std::map<AppId, Session> sessions_;
};

// ---------------------------------------------------------------------------
// The application: pans across the map at 2 tiles/second, adapting
// resolution so tiles keep up with the pan.
// ---------------------------------------------------------------------------

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));
  Simulation sim(1);
  sim.set_trace(trace_session.recorder());
  Link link(&sim, kHighBandwidth, kOneWayLatency);
  Modulator modulator(&sim, &link);
  OdysseyClient client(&sim, &link, std::make_unique<CentralizedStrategy>(&sim));
  client.InstallWarden(std::make_unique<MapWarden>());
  const AppId app = client.RegisterApplication("map-viewer");

  modulator.Replay(MakeStepDown());  // lose the fast network mid-pan

  MapInfo info;
  client.Tsop(app, "/odyssey/maps/pittsburgh", kMapOpen, "pittsburgh",
              [&](Status status, std::string out) {  // ody_lint: owned-capture
                ODY_ASSERT(status.ok() && UnpackStruct(out, &info), "map open failed");
              });

  int level = 0;
  int fetched = 0;
  double fidelity_sum = 0.0;

  // Pick the best resolution whose tile stream fits the availability.
  const auto choose_level = [&]() {
    const double bandwidth = client.CurrentLevel(app, ResourceId::kNetworkBandwidth);
    for (int i = 0; i < info.level_count; ++i) {
      if (info.tile_bytes[i] * 2.0 * 1.1 <= bandwidth) {  // 2 tiles/s + headroom
        return i;
      }
    }
    return info.level_count - 1;
  };

  // The pan loop: one tile each 500 ms.
  std::function<void(int)> pan = [&](int step) {
    if (step >= 120) {
      return;
    }
    const int wanted = choose_level();
    if (wanted != level && fetched > 2) {
      std::printf("[viewer] t=%5.1fs switching %s -> %s\n", DurationToSeconds(sim.now()),
                  kMapLevels[level].name, kMapLevels[wanted].name);
      level = wanted;
      client.Tsop(app, "/odyssey/maps/pittsburgh", kMapSetLevel,
                  PackStruct(MapSetLevel{level}), [](Status, std::string) {});
    }
    client.Tsop(app, "/odyssey/maps/pittsburgh", kMapFetchTile,
                // ody_lint: owned-capture
                PackStruct(MapFetchTile{step, 0}), [&](Status status, std::string out) {
                  MapTileResult tile;
                  if (status.ok() && UnpackStruct(out, &tile)) {
                    ++fetched;
                    fidelity_sum += tile.fidelity;
                  }
                });
    sim.Schedule(500 * kMillisecond, [&pan, step] { pan(step + 1); });  // ody_lint: owned-capture
  };
  pan(0);

  sim.RunUntil(kWaveformLength + 5 * kSecond);

  std::printf("\npanned 120 tiles; fetched %d at mean fidelity %.2f\n", fetched,
              fetched == 0 ? 0.0 : fidelity_sum / fetched);

  // Byte-stream access through the same namespace.
  client.Read(app, "/odyssey/maps/tiles/42.17", [](Status, std::string data) {
    std::printf("read: %s\n", data.c_str());
  });
  sim.Run();
  return trace_session.ExportOrWarn() ? 0 : 1;
}

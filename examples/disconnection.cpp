// Disconnected operation: the radio shadow.
//
// §5.3: "In the extreme case of disconnection, the local Janus is capable
// of recognizing the utterance, but at a severe CPU and memory cost."
// This example drives the speech recognizer through a trace that drops all
// the way to zero bandwidth — a deep radio shadow — and shows the adaptive
// warden shifting plans: hybrid while connected, fully local while
// disconnected, and back.
//
//   $ ./disconnection

#include <cstdio>

#include "src/apps/speech_frontend.h"
#include "src/metrics/experiment.h"
#include "src/trace/trace_session.h"

using namespace odyssey;

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));
  ExperimentRig rig(/*seed=*/1, StrategyKind::kBlindOptimism);
  rig.sim().set_trace(trace_session.recorder());
  // Blind optimism is the right strategy here on purpose: detecting *zero*
  // bandwidth passively is impossible (no traffic flows, so no
  // observations), and the paper notes the networking layer can notify the
  // system when an interface goes away.  The warden still decides *how* to
  // adapt.
  ReplayTrace trace;
  trace.Append(20 * kSecond, kHighBandwidth, kOneWayLatency);  // connected
  trace.Append(20 * kSecond, 0.0, kOneWayLatency);             // deep shadow
  trace.Append(20 * kSecond, kHighBandwidth, kOneWayLatency);  // reconnected

  SpeechFrontEnd speech(&rig.client(), SpeechFrontEndOptions{});
  rig.Replay(trace, /*prime=*/false);
  speech.Start();
  rig.sim().RunUntil(trace.TotalDuration() + 10 * kSecond);

  const char* plan_names[] = {"adaptive", "hybrid", "remote", "local"};
  std::printf("  t(s)   plan     recognition time\n");
  std::printf("  ------------------------------------\n");
  for (const auto& outcome : speech.outcomes()) {
    std::printf("  %5.1f  %-7s  %.2fs\n", DurationToSeconds(outcome.started),
                plan_names[outcome.plan], DurationToSeconds(outcome.elapsed));
  }

  int local = 0;
  for (const auto& outcome : speech.outcomes()) {
    local += outcome.plan == static_cast<int>(SpeechMode::kAlwaysLocal) ? 1 : 0;
  }
  std::printf(
      "\n%d of %zu recognitions ran fully local during the shadow -- slow (severe\n"
      "CPU cost) but the user kept a working, degraded vocabulary (§2.1).\n",
      local, speech.outcomes().size());
  return trace_session.ExportOrWarn() ? 0 : 1;
}

// The motivating scenario of §2.1: a user walks through an urban setting
// while three applications — a video narration, a Web browser, and a speech
// recognizer — adapt concurrently as the wireless overlay network comes and
// goes (the Figure 13 trace).
//
// The example prints an adaptation timeline: every track switch, fidelity
// change, and per-minute summary, showing the collaborative partnership
// between the viceroy (which notices bandwidth changes) and the
// applications (which decide how to adapt).
//
//   $ ./urban_walk

#include <cstdio>
#include <string>

#include "src/apps/speech_frontend.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/metrics/experiment.h"
#include "src/trace/trace_session.h"

using namespace odyssey;

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));
  ExperimentRig rig(/*seed=*/1, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace_session.recorder());
  const ReplayTrace trace = MakeUrbanScenario();

  VideoPlayerOptions video_options;
  video_options.frames_to_play = 9200;  // the walk is 15 minutes at 10 fps
  VideoPlayer video(&rig.client(), video_options);
  WebBrowser web(&rig.client(), WebBrowserOptions{});
  SpeechFrontEnd speech(&rig.client(), SpeechFrontEndOptions{});

  // ody_lint: owned-capture
  rig.modulator().AddTransitionListener([&](const TraceSegment& segment) {
    std::printf("%6.1fs  [network] %s (%.0f KB/s)\n", DurationToSeconds(rig.sim().now()),
                segment.bandwidth_bps > 64.0 * 1024.0 ? "good connectivity" : "radio shadow edge",
                segment.bandwidth_bps / 1024.0);
  });

  const Time start = rig.sim().now();
  rig.Replay(trace, /*prime=*/false);
  video.Start();
  web.Start();
  speech.Start();

  // Narrate once a minute: what fidelity is everyone running at?
  const char* track_names[] = {"JPEG(99)", "JPEG(50)", "B/W"};
  for (int minute = 1; minute <= 15; ++minute) {
    rig.sim().Schedule(minute * kMinute, [&, minute] {  // ody_lint: owned-capture
      const Time begin = start + (minute - 1) * kMinute;
      const Time end = start + minute * kMinute;
      std::printf(
          "%6.1fs  [minute %2d] video: track %-8s %3d drops, fidelity %.2f | "
          "web: %.2fs/fetch fidelity %.2f | speech: %.2fs\n",
          DurationToSeconds(rig.sim().now()), minute, track_names[video.current_track()],
          video.DropsBetween(begin, end), video.MeanFidelityBetween(begin, end),
          web.MeanSecondsBetween(begin, end), web.MeanFidelityBetween(begin, end),
          speech.MeanSecondsBetween(begin, end));
    });
  }

  rig.sim().RunUntil(trace.TotalDuration());

  std::printf("\n--- walk complete ---\n");
  std::printf("video: %d drops over 15 min, mean fidelity %.2f, %d track switches\n",
              video.DropsBetween(0, trace.TotalDuration()),
              video.MeanFidelityBetween(0, trace.TotalDuration()), video.track_switches());
  std::printf("web:   %.2fs mean fetch, fidelity %.2f\n",
              web.MeanSecondsBetween(0, trace.TotalDuration()),
              web.MeanFidelityBetween(0, trace.TotalDuration()));
  std::printf("speech: %.2fs mean recognition\n",
              speech.MeanSecondsBetween(0, trace.TotalDuration()));
  std::printf(
      "\nThe user saw fidelity shift as she walked, but never had to initiate\n"
      "adaptation herself -- those decisions were delegated to Odyssey (§2.1).\n");
  return trace_session.ExportOrWarn() ? 0 : 1;
}

// A two-node fleet end to end: two Odyssey clients on separate wireless
// links contend for one shared file server, each arbitrating against the
// fleet-merged view of the *server's* supply rather than its own link alone
// (DESIGN.md §15).  Node B rides out a mid-run outage; watch its peers'
// view of it go stale, the survivor's per-client share widen, and the
// views re-converge once B is back on the air.
//
// The example prints one line per second — each node's merged server view,
// the clamp it implies, and what its application is actually granted — plus
// every adaptation upcall.  Pass --trace-out=<path> to export a
// chrome://tracing-viewable trace of the whole run.
//
//   $ ./fleet_drive
//   $ ./fleet_drive --trace-out=fleet.json

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/object_namespace.h"
#include "src/core/odyssey_client.h"
#include "src/core/resource.h"
#include "src/fleet/fleet_aggregator.h"
#include "src/fleet/fleet_dispatcher.h"
#include "src/fleet/fleet_supply_model.h"
#include "src/metrics/experiment.h"
#include "src/net/fault_injector.h"
#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/servers/file_server.h"
#include "src/strategies/centralized.h"
#include "src/trace/trace_session.h"
#include "src/tracemod/replay_trace.h"
#include "src/wardens/file_warden.h"

using namespace odyssey;

namespace {

constexpr Duration kHorizon = 12 * kSecond;
constexpr Duration kFeedPeriod = 100 * kMillisecond;

// One client node: its link, its aggregator, its fleet-arbitrating
// strategy, and one adaptive application holding a window of tolerance.
struct DriveNode {
  const char* tag = "?";
  ReplayTrace waveform;
  std::unique_ptr<Link> link;
  std::unique_ptr<Modulator> modulator;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FleetAggregator> aggregator;
  FleetSupplyModel* model = nullptr;  // owned by the strategy
  std::unique_ptr<OdysseyClient> client;
  AppId app = 0;
  Endpoint* endpoint = nullptr;
  uint64_t tick = 0;
};

void RegisterWindow(Simulation* sim, DriveNode* node, double level) {
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = level * 0.7;
  descriptor.upper = std::max(level * 1.3, descriptor.lower + 1.0);
  descriptor.handler = [sim, node](RequestId, ResourceId, double new_level) {
    std::printf("%6.1fs  %s: upcall -- level now %5.0f KB/s, re-registering window\n",
                DurationToSeconds(sim->now()), node->tag, new_level / 1024.0);
    RegisterWindow(sim, node, new_level);
  };
  const RequestResult result = node->client->Request(node->app, descriptor);
  if (!result.status_ok) {
    RegisterWindow(sim, node, result.current_level);
  }
}

}  // namespace

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));

  constexpr uint64_t kSeed = 1;
  Simulation sim(kSeed);
  sim.set_trace(trace_session.recorder());

  FileServer server(&sim.rng());
  server.Publish("doc/0", 32.0 * 1024.0);
  FleetDispatcher dispatcher(&sim);

  std::vector<std::unique_ptr<DriveNode>> nodes;
  for (int i = 0; i < 2; ++i) {
    auto node = std::make_unique<DriveNode>();
    node->tag = (i == 0) ? "nodeA" : "nodeB";
    // Node A holds a steady 160 KB/s; node B's 96 KB/s link dies for two
    // seconds mid-run ([4s, 6s)), taking its fleet traffic with it.
    if (i == 0) {
      node->waveform.Append(kHorizon, 160.0 * 1024.0, 10 * kMillisecond);
    } else {
      node->waveform.Append(kHorizon, 96.0 * 1024.0, 15 * kMillisecond);
    }
    const TraceSegment first = node->waveform.At(0);
    node->link = std::make_unique<Link>(&sim, first.bandwidth_bps, first.latency);
    node->modulator = std::make_unique<Modulator>(&sim, node->link.get());
    node->injector = std::make_unique<FaultInjector>(&sim, node->link.get());
    if (i == 1) {
      FaultPlan plan;
      plan.WithSeed(7).WithOutage(4 * kSecond, 2 * kSecond);
      node->injector->Arm(plan);
    }
    node->aggregator = std::make_unique<FleetAggregator>(&sim, &dispatcher,
                                                         static_cast<FleetNodeId>(i), kSeed);

    auto model = std::make_unique<FleetSupplyModel>(node->aggregator.get());
    node->model = model.get();
    node->client = std::make_unique<OdysseyClient>(
        &sim, node->link.get(),
        std::make_unique<CentralizedStrategy>(&sim, std::move(model)), kUpcallLatency);

    // Every connection the client opens is bound to its server group; both
    // nodes' apps land on the single shared server (group 0).
    FleetSupplyModel* raw_model = node->model;
    node->client->set_connection_observer(
        [raw_model](Endpoint* endpoint, const std::string&) {
          raw_model->MapConnection(endpoint->id(), 0);
        });
    node->aggregator->set_report_source(  // ody_lint: owned-capture
        [raw_model, &sim] { return raw_model->LocalReports(sim.now()); });

    node->client->InstallWarden(std::make_unique<FileWarden>(&server));
    node->client->set_fault_injector(node->injector.get());

    node->app = node->client->RegisterApplication(std::string("viewer-") + node->tag);
    node->endpoint = node->client->OpenConnection(node->app, "fleet-s0");
    nodes.push_back(std::move(node));
  }

  for (size_t i = 0; i < nodes.size(); ++i) {
    FleetAggregator* aggregator = nodes[i]->aggregator.get();
    dispatcher.RegisterNode(static_cast<FleetNodeId>(i), &nodes[i]->waveform,
                            nodes[i]->injector.get(),
                            [aggregator](const FleetMessage& message) {  // ody_lint: owned-capture
                              aggregator->OnMessage(message);
                            });
  }

  std::printf("fleet_drive: 2 clients, 1 shared server; nodeB outage [4s, 6s)\n\n");

  // Synthetic passive observations: each app's connection sees its link's
  // nominal rate, so the local supply estimators have something to chew on.
  std::function<void()> feed = [&] {
    if (sim.now() >= kHorizon) {
      return;
    }
    for (auto& node : nodes) {
      const double rate = node->waveform.BandwidthAt(sim.now());
      node->endpoint->log().RecordThroughput(sim.now(), rate * DurationToSeconds(kFeedPeriod),
                                             kFeedPeriod);
      if (node->tick % 10 == 0) {
        node->endpoint->log().RecordRoundTrip(sim.now(), node->waveform.At(sim.now()).latency);
      }
      ++node->tick;
    }
    sim.Post(kFeedPeriod, feed);
  };

  // Real bytes through the warden path once a second, so the outage also
  // interrupts genuine RPC traffic, not just the synthetic feed.
  std::function<void()> sweep = [&] {
    if (sim.now() >= kHorizon) {
      return;
    }
    for (auto& node : nodes) {
      node->client->Read(node->app, std::string(kOdysseyRoot) + "files/doc/0",
                         [](Status, std::string) {});
    }
    sim.Post(1 * kSecond, sweep);
  };

  // The narration: each node's merged view of the shared server and the
  // per-client cap the clamp derives from it.
  std::function<void()> report = [&] {
    const Time now = sim.now();
    for (auto& node : nodes) {
      const FleetAggregator::ServerView view = node->aggregator->ViewOf(0, now);
      const double cap = node->model->ServerCapFor(0, now);
      const double level = node->client->CurrentLevel(node->app, ResourceId::kNetworkBandwidth);
      if (view.valid) {
        std::printf(
            "%6.1fs  %s: server view %5.0f KB/s from %d node(s), %d active -> cap %5.0f KB/s, "
            "app granted %5.0f KB/s\n",
            DurationToSeconds(now), node->tag, view.supply_bps / 1024.0, view.reporting,
            view.active_clients, cap / 1024.0, level / 1024.0);
      } else {
        std::printf("%6.1fs  %s: no server view yet, app granted %5.0f KB/s\n",
                    DurationToSeconds(now), node->tag, level / 1024.0);
      }
    }
    if (now < kHorizon) {
      sim.Post(1 * kSecond, report);
    }
  };

  sim.PostAt(4 * kSecond, [] { std::printf("\n   --- nodeB enters its outage ---\n\n"); });
  sim.PostAt(6 * kSecond, [] { std::printf("\n   --- nodeB back on the air ---\n\n"); });

  for (auto& node : nodes) {
    node->modulator->Replay(node->waveform);
    node->aggregator->StopAt(kHorizon);
    node->aggregator->Start();
    RegisterWindow(&sim, node.get(),
                   node->client->CurrentLevel(node->app, ResourceId::kNetworkBandwidth));
  }
  sim.Post(kFeedPeriod, feed);
  sim.Post(1 * kSecond, sweep);
  sim.Post(1 * kSecond, report);
  sim.RunUntil(kHorizon);

  const FleetAggregator::ServerView a = nodes[0]->aggregator->ViewOf(0, sim.now());
  const FleetAggregator::ServerView b = nodes[1]->aggregator->ViewOf(0, sim.now());
  const double hi = std::max(a.supply_bps, b.supply_bps);
  const double spread = hi > 0.0 ? (hi - std::min(a.supply_bps, b.supply_bps)) / hi : 0.0;
  std::printf("\n--- drive complete ---\n");
  std::printf("fleet messages: %llu sent, %llu delivered, %llu dropped\n",
              static_cast<unsigned long long>(dispatcher.messages_sent()),
              static_cast<unsigned long long>(dispatcher.messages_delivered()),
              static_cast<unsigned long long>(dispatcher.messages_dropped()));
  std::printf("reports broadcast: nodeA %llu, nodeB %llu\n",
              static_cast<unsigned long long>(nodes[0]->aggregator->reports_broadcast()),
              static_cast<unsigned long long>(nodes[1]->aggregator->reports_broadcast()));
  std::printf("final view spread: %.2f%% (views re-converged after the outage)\n",
              spread * 100.0);
  std::printf(
      "\nEach node bounded its own claim by the fleet's merged estimate of\n"
      "the shared server -- the per-server fair share the tier_fleet\n"
      "campaign's oracles audit (DESIGN.md SS15).\n");
  return trace_session.ExportOrWarn() ? 0 : 1;
}

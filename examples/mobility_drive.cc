// A mobility-generated scenario end to end: a driver follows a Manhattan
// street grid through a cell-grid coverage layout while a speech recognizer
// and a Web browser adapt to the waveform the motion produces.  Unlike
// urban_walk (which replays the hand-authored Figure 13 trace), every
// bandwidth transition here is caused by the modeled position — the same
// src/mobility pipeline behind the tier_mobility campaign and the fuzzer's
// mobility dimension (DESIGN.md §14).
//
// The example prints the drive timeline — each tier change annotated with
// the vehicle's position — and a closing summary.  Pass
// --trace-out=<path> to export a chrome://tracing-viewable trace of the
// whole run.
//
//   $ ./mobility_drive
//   $ ./mobility_drive --trace-out=drive.json

#include <cstdio>
#include <memory>

#include "src/apps/speech_frontend.h"
#include "src/apps/web_browser.h"
#include "src/metrics/experiment.h"
#include "src/mobility/mobility_model.h"
#include "src/mobility/radio_environment.h"
#include "src/mobility/waveform_source.h"
#include "src/trace/trace_session.h"

using namespace odyssey;

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));

  // The spec is the whole scenario: a ~8x-pedestrian Manhattan drive under
  // grid coverage, two simulated minutes.  The same (spec, seed) pair
  // always yields this exact drive.
  MobilityScenarioSpec spec;
  spec.model = MobilityModelKind::kManhattanGrid;
  spec.layout = BaseStationLayout::kCellGrid;
  spec.speed_scale = 8.0;
  constexpr uint64_t kSeed = 1;

  const std::unique_ptr<MobilityModel> model = MakeMobilityModel(spec, kSeed);
  const ReplayTrace waveform = MakeMobilityWaveform(spec, kSeed);
  std::printf("mobility_drive: %s over %s, %zu waveform segments in %.0f s\n\n",
              model->name(), BaseStationLayoutName(spec.layout), waveform.segments().size(),
              DurationToSeconds(waveform.TotalDuration()));

  ExperimentRig rig(kSeed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace_session.recorder());

  SpeechFrontEnd speech(&rig.client(), SpeechFrontEndOptions{});
  WebBrowser web(&rig.client(), WebBrowserOptions{});

  // Narrate each tier change with where the vehicle is when it happens.
  // ody_lint: owned-capture
  rig.modulator().AddTransitionListener([&](const TraceSegment& segment) {
    const Time now = rig.sim().now();
    const Vec2 position = model->PositionAt(now);
    std::printf("%6.1fs  at (%4.0f, %4.0f) m: %7.0f KB/s%s\n", DurationToSeconds(now),
                position.x, position.y, segment.bandwidth_bps / 1024.0,
                segment.bandwidth_bps <= 0.0 ? "  -- radio shadow" : "");
  });

  rig.Replay(waveform, /*prime=*/false);
  speech.Start();
  web.Start();
  rig.sim().RunUntil(waveform.TotalDuration());

  std::printf("\n--- drive complete ---\n");
  std::printf("speech: %.2fs mean recognition\n",
              speech.MeanSecondsBetween(0, waveform.TotalDuration()));
  std::printf("web:    %.2fs mean fetch, fidelity %.2f\n",
              web.MeanSecondsBetween(0, waveform.TotalDuration()),
              web.MeanFidelityBetween(0, waveform.TotalDuration()));
  std::printf(
      "\nEvery transition above was caused by motion: position -> path loss\n"
      "-> SNR -> bandwidth tier, sampled into the same ReplayTrace the\n"
      "hand-authored scenarios use (DESIGN.md SS14).\n");
  return trace_session.ExportOrWarn() ? 0 : 1;
}

// Background information filtering (§2.3).
//
// "An information filtering application may run in the background
// monitoring data such as stock prices or enemy movements, and alert the
// user as appropriate."  A filter watches two telemetry feeds while the
// foreground video narration plays; when the link degrades, the telemetry
// warden thins its sampling rate and batches deliveries (the §2.2 fidelity
// dimensions for telemetry), and alert detection lag grows accordingly —
// but the alerts still arrive.
//
//   $ ./background_filter

#include <cstdio>
#include <memory>

#include "src/apps/filter_app.h"
#include "src/apps/video_player.h"
#include "src/core/contract.h"
#include "src/metrics/experiment.h"
#include "src/servers/telemetry_server.h"
#include "src/trace/trace_session.h"
#include "src/wardens/telemetry_warden.h"

using namespace odyssey;

int main(int argc, char** argv) {
  TraceSession trace_session(TraceSession::FromArgs(&argc, argv));
  ExperimentRig rig(/*seed=*/1, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace_session.recorder());
  TelemetryServer telemetry(&rig.sim());
  telemetry.CreateFeed("stocks/ACME", 100 * kMillisecond, 100.0, 0.05);
  telemetry.CreateFeed("scout/sector-7", 200 * kMillisecond, 0.0, 0.02);
  auto* warden = static_cast<TelemetryWarden*>(
      rig.client().InstallWarden(std::make_unique<TelemetryWarden>(&telemetry)));

  // Foreground: the video narration.  Background: two filters.
  VideoPlayerOptions video_options;
  video_options.frames_to_play = 3000;
  VideoPlayer video(&rig.client(), video_options);
  FilterApp stocks(&rig.client(), warden, FilterAppOptions{"stocks/ACME", 5.0, -1});
  FilterApp scout(&rig.client(), warden, FilterAppOptions{"scout/sector-7", 1.0, -1});

  // Five minutes: good connectivity, then a weak stretch, then recovery.
  ReplayTrace trace;
  trace.Append(2 * kMinute, kHighBandwidth, kOneWayLatency);
  trace.Append(2 * kMinute, 8.0 * 1024.0, kOneWayLatency);  // weak fringe
  trace.Append(1 * kMinute, kHighBandwidth, kOneWayLatency);
  rig.Replay(trace, /*prime=*/false);
  video.Start();
  stocks.Start();
  scout.Start();

  // Market/field events land in both phases.
  const Time events[] = {60 * kSecond, 180 * kSecond, 260 * kSecond};
  for (const Time at : events) {
    rig.sim().ScheduleAt(at, [&telemetry] {  // ody_lint: owned-capture
      const Status stock_event = telemetry.InjectEvent("stocks/ACME", 25.0);
      ODY_ASSERT(stock_event.ok(), "event injected into an unknown feed");
      const Status scout_event = telemetry.InjectEvent("scout/sector-7", 10.0);
      ODY_ASSERT(scout_event.ok(), "event injected into an unknown feed");
    });
  }

  rig.sim().RunUntil(trace.TotalDuration());
  stocks.Stop();
  scout.Stop();
  rig.sim().RunUntil(trace.TotalDuration() + kSecond);

  std::printf("foreground video: %d drops over 5 min, fidelity %.2f\n",
              video.DropsBetween(0, trace.TotalDuration()),
              video.MeanFidelityBetween(0, trace.TotalDuration()));
  const auto print_filter = [](const char* name, const FilterApp& filter) {
    std::printf("\n%s: %d samples seen, %zu alerts, warden at level %d after %d changes\n",
                name, filter.samples_seen(), filter.alerts().size(),
                filter.final_stats().current_level, filter.final_stats().level_changes);
    for (const FilterAlert& alert : filter.alerts()) {
      std::printf("  alert at t=%6.1fs value %.1f (detected %.2fs after the event)\n",
                  DurationToSeconds(alert.at), alert.value,
                  DurationToSeconds(alert.detection_lag()));
    }
  };
  print_filter("stocks/ACME  ", stocks);
  print_filter("scout/sector7", scout);
  std::printf(
      "\nDuring the weak stretch the warden dropped to a thinner delivery level:\n"
      "alerts arrive later but the background filters never starve the video.\n");
  return trace_session.ExportOrWarn() ? 0 : 1;
}

// Figure 10: video player performance and fidelity.
//
// xanim plays a 600-frame movie at 10 fps over each reference waveform
// under four strategies: the static B/W, JPEG(50) and JPEG(99) tracks, and
// Odyssey's adaptive track selection.  Fidelity is the mean fidelity of
// displayed frames; performance is the count of dropped frames.  Each cell
// is the mean (stddev) of five trials, after thirty seconds of priming.

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

struct CellResult {
  std::vector<double> drops;
  std::vector<double> fidelity;
};

CellResult RunCell(Waveform waveform, int fixed_track) {
  CellResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    const VideoTrialResult outcome =
        RunVideoTrial(waveform, fixed_track, static_cast<uint64_t>(trial + 1),
                      g_trace_session->ClaimRecorderOnce());
    result.drops.push_back(outcome.drops);
    result.fidelity.push_back(outcome.fidelity);
  }
  return result;
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Figure 10: Video Player Performance and Fidelity",
              "600 frames @10fps per waveform; drops and fidelity, mean (stddev) of 5 trials");

  Table table({"Waveform", "B/W drops", "JPEG(50) drops", "JPEG(99) drops", "Odyssey drops",
               "Odyssey fidelity"});
  for (const Waveform waveform : AllWaveforms()) {
    const CellResult bw = RunCell(waveform, 2);
    const CellResult jpeg50 = RunCell(waveform, 1);
    const CellResult jpeg99 = RunCell(waveform, 0);
    const CellResult adaptive = RunCell(waveform, -1);
    table.AddRow({WaveformName(waveform), MeanStd(bw.drops, 1), MeanStd(jpeg50.drops, 1),
                  MeanStd(jpeg99.drops, 1), MeanStd(adaptive.drops, 1),
                  MeanStd(adaptive.fidelity, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nStatic fidelities: B/W = 0.01, JPEG(50) = 0.5, JPEG(99) = 1.0.\n"
            << "Paper reference (drops, fidelity): Step-Up    B/W 0, J50 3, J99 169, "
               "Odyssey 7 @0.73\n"
            << "                                   Step-Down  B/W 0, J50 5, J99 169, "
               "Odyssey 25 @0.76\n"
            << "                                   Impulse-Up B/W 0, J50 3, J99 325, "
               "Odyssey 23 @0.50\n"
            << "                                   Impulse-Dn B/W 0, J50 0, J99  12, "
               "Odyssey 14 @0.98\n"
            << "Shape to check: Odyssey's fidelity is as good as or better than JPEG(50)\n"
            << "everywhere while dropping far fewer frames than JPEG(99) on every\n"
            << "waveform except Impulse-Down, where the two are indistinguishable.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

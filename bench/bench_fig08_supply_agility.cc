// Figure 8: agility of bandwidth estimation under varying supply.
//
// A synthetic bitstream application consumes data as fast as possible
// through the streaming warden over a single server connection while the
// modulated network replays each reference waveform (Figure 7).  The
// system is primed for thirty seconds before observation.  For each
// waveform we report the supply estimate over time (mean and min/max
// spread of five trials), the settling time after each transition — the
// time to reach and stay within the nominal bandwidth range — and the
// upcall latency the adaptive consumer saw (supply change to handler, in
// sim time).
//
// Flags: --trace-out=<path> exports a chrome://tracing JSON of the
// Step-Up waveform's first trial (the golden-trace scenario).

#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"
#include "src/trace/trace_session.h"

namespace odyssey {
namespace {

// Nominal acceptance band around a theoretical level.
void Band(double nominal, double* lo, double* hi) {
  *lo = 0.85 * nominal;
  *hi = 1.15 * nominal;
}

void RunWaveform(Waveform waveform, TraceSession* session) {
  std::vector<Series> trials;
  std::vector<double> latency_means;
  double latency_max = 0.0;
  uint64_t upcalls = 0;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    // The traced run is Step-Up, seed 1: the scenario the golden-trace
    // regression and the CI determinism diff replay.
    TraceRecorder* recorder =
        (waveform == Waveform::kStepUp && trial == 0) ? session->ClaimRecorderOnce() : nullptr;
    const AgilityTrialResult result =
        RunSupplyAgilityTrial(waveform, static_cast<uint64_t>(trial + 1), recorder);
    trials.push_back(result.series);
    latency_means.push_back(result.upcall_latency_mean_ms);
    if (result.upcall_latency_max_ms > latency_max) {
      latency_max = result.upcall_latency_max_ms;
    }
    upcalls += result.upcalls;
  }
  const SeriesBand band = MergeSeries(trials);

  const ReplayTrace trace = MakeWaveform(waveform);
  std::cout << "\n--- " << WaveformName(waveform)
            << " (theoretical: " << Fmt(trace.BandwidthAt(0) / 1024.0, 0) << " -> "
            << Fmt(trace.BandwidthAt(30 * kSecond) / 1024.0, 0) << " -> "
            << Fmt(trace.BandwidthAt(59 * kSecond) / 1024.0, 0) << " KB/s) ---\n";
  PrintSeriesBand(band, "estimate (KB/s)", 10);

  // Settling times after the transitions the waveform contains.
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> settle_mid;
  std::vector<double> settle_tail;
  for (const Series& series : trials) {
    Band(trace.BandwidthAt(31 * kSecond), &lo, &hi);
    settle_mid.push_back(SettlingTime(series, 30.0, lo, hi));
    Band(trace.BandwidthAt(59 * kSecond), &lo, &hi);
    settle_tail.push_back(SettlingTime(series, 32.0, lo, hi));
  }
  std::cout << "settling after t=30s transition: " << MeanStd(settle_mid, 2) << " s\n";
  if (waveform == Waveform::kImpulseUp || waveform == Waveform::kImpulseDown) {
    std::cout << "settling after trailing edge (t=32s): " << MeanStd(settle_tail, 2) << " s\n";
  }
  std::cout << "upcall latency: mean " << MeanStd(latency_means, 2) << " ms, max "
            << Fmt(latency_max, 2) << " ms (" << upcalls << " upcalls over " << kPaperTrials
            << " trials)\n";
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::PrintBanner(
      "Figure 8: Supply Estimation Agility",
      "bitstream at maximum rate; estimate vs the four reference waveforms; 5 trials");
  for (const odyssey::Waveform waveform : odyssey::AllWaveforms()) {
    odyssey::RunWaveform(waveform, &session);
  }
  std::cout << "\nPaper reference: Step-Up detected almost instantaneously; Step-Down\n"
               "settling time ~2.0 s (throughput estimates only complete at window end);\n"
               "impulse leading edges traced, trailing edges show a noticeable settle.\n";
  return session.ExportOrWarn() ? 0 : 1;
}

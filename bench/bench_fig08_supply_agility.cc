// Figure 8: agility of bandwidth estimation under varying supply.
//
// A synthetic bitstream application consumes data as fast as possible
// through the streaming warden over a single server connection while the
// modulated network replays each reference waveform (Figure 7).  The
// system is primed for thirty seconds before observation.  For each
// waveform we report the supply estimate over time (mean and min/max
// spread of five trials) and the settling time after each transition —
// the time to reach and stay within the nominal bandwidth range.

#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/bitstream_app.h"
#include "src/metrics/experiment.h"

namespace odyssey {
namespace {

constexpr Duration kSamplePeriod = 100 * kMillisecond;

Series RunTrial(Waveform waveform, uint64_t seed) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  BitstreamApp app(&rig.client(), "bitstream");
  const Time measure = rig.Replay(MakeWaveform(waveform));
  app.Start();
  Sampler sampler(&rig.sim(), kSamplePeriod, measure, [&rig] {
    return rig.centralized()->TotalSupply(rig.sim().now());
  });
  rig.sim().ScheduleAt(measure, [&] { sampler.Run(measure + kWaveformLength); });
  rig.sim().RunUntil(measure + kWaveformLength);
  return sampler.series();
}

// Nominal acceptance band around a theoretical level.
void Band(double nominal, double* lo, double* hi) {
  *lo = 0.85 * nominal;
  *hi = 1.15 * nominal;
}

void RunWaveform(Waveform waveform) {
  std::vector<Series> trials;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    trials.push_back(RunTrial(waveform, static_cast<uint64_t>(trial + 1)));
  }
  const SeriesBand band = MergeSeries(trials);

  const ReplayTrace trace = MakeWaveform(waveform);
  std::cout << "\n--- " << WaveformName(waveform)
            << " (theoretical: " << Fmt(trace.BandwidthAt(0) / 1024.0, 0) << " -> "
            << Fmt(trace.BandwidthAt(30 * kSecond) / 1024.0, 0) << " -> "
            << Fmt(trace.BandwidthAt(59 * kSecond) / 1024.0, 0) << " KB/s) ---\n";
  PrintSeriesBand(band, "estimate (KB/s)", 10);

  // Settling times after the transitions the waveform contains.
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> settle_mid;
  std::vector<double> settle_tail;
  for (const Series& series : trials) {
    Band(trace.BandwidthAt(31 * kSecond), &lo, &hi);
    settle_mid.push_back(SettlingTime(series, 30.0, lo, hi));
    Band(trace.BandwidthAt(59 * kSecond), &lo, &hi);
    settle_tail.push_back(SettlingTime(series, 32.0, lo, hi));
  }
  std::cout << "settling after t=30s transition: " << MeanStd(settle_mid, 2) << " s\n";
  if (waveform == Waveform::kImpulseUp || waveform == Waveform::kImpulseDown) {
    std::cout << "settling after trailing edge (t=32s): " << MeanStd(settle_tail, 2) << " s\n";
  }
}

}  // namespace
}  // namespace odyssey

int main() {
  odyssey::PrintBanner(
      "Figure 8: Supply Estimation Agility",
      "bitstream at maximum rate; estimate vs the four reference waveforms; 5 trials");
  for (const odyssey::Waveform waveform : odyssey::AllWaveforms()) {
    odyssey::RunWaveform(waveform);
  }
  std::cout << "\nPaper reference: Step-Up detected almost instantaneously; Step-Down\n"
               "settling time ~2.0 s (throughput estimates only complete at window end);\n"
               "impulse leading edges traced, trailing edges show a noticeable settle.\n";
  return 0;
}

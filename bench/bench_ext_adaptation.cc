// Extension bench (beyond the paper's figures): the §8 roadmap features
// this repository implements on top of the SOSP'97 evaluation.
//
//   [1] Consistency as fidelity: the file warden's strict / periodic /
//       optimistic / adaptive levels on the Step-Down waveform, with a
//       server-side writer updating files underneath the cache.
//   [2] Full-page Web adaptation: fetch time per fidelity level for a page
//       of markup plus inline images, at both reference bandwidths.
//   [3] Recognition-fidelity levels: the speech vocabulary the warden picks
//       for a sweep of latency goals, with the achieved time.
//   [4] Full-resource management: battery and money draining across the
//       urban walk, with the low-resource upcalls they trigger.
//   [5] Telemetry fidelity: sampling rate and timeliness per delivery
//       level, and the background filter's alert-detection lag.

#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/filter_app.h"
#include "src/apps/speech_frontend.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/core/battery_model.h"
#include "src/core/contract.h"
#include "src/core/money_meter.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/metrics/scenarios.h"
#include "src/servers/telemetry_server.h"
#include "src/wardens/telemetry_warden.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

constexpr double kKb = 1024.0;

// --- [1] File consistency levels ---

struct FileRunResult {
  std::vector<double> mean_read_ms;
  std::vector<double> stale_pct;
  std::vector<double> fidelity;
};

FileRunResult RunFileConsistency(FileConsistency level) {
  FileRunResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    const FileConsistencyTrialResult outcome = RunFileConsistencyTrial(
        level, static_cast<uint64_t>(trial + 1), g_trace_session->ClaimRecorderOnce());
    result.mean_read_ms.push_back(outcome.mean_read_ms);
    result.stale_pct.push_back(outcome.stale_pct);
    result.fidelity.push_back(outcome.fidelity);
  }
  return result;
}

void RunFileSection() {
  std::cout << "\n[1] Consistency as a fidelity dimension (file warden, Step-Down,\n"
               "    server-side writer updating files every 2 s)\n";
  Table table({"Consistency", "mean read ms", "stale serves %", "fidelity"});
  for (const FileConsistency level :
       {FileConsistency::kStrict, FileConsistency::kPeriodic, FileConsistency::kOptimistic,
        FileConsistency::kAdaptive}) {
    const FileRunResult result = RunFileConsistency(level);
    table.AddRow({FileConsistencyName(level), MeanStd(result.mean_read_ms, 1),
                  MeanStd(result.stale_pct, 1), MeanStd(result.fidelity, 2)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: strict pays a validation round trip per read and never\n"
               "serves stale data; optimistic is fastest but exposes stale copies; the\n"
               "adaptive level sits between, degrading consistency as bandwidth falls.\n";
}

// --- [2] Full-page Web adaptation ---

void RunPageSection() {
  std::cout << "\n[2] Full-page Web adaptation (6 KB markup + 3 inline images)\n";
  Table table({"Level", "page bytes KB", "fetch s @120KB/s", "fetch s @40KB/s"});
  for (int level = 0; level < 4; ++level) {
    std::vector<double> bytes_kb;
    std::vector<double> high_s;
    std::vector<double> low_s;
    for (int trial = 0; trial < kPaperTrials; ++trial) {
      for (const double bandwidth : {kHighBandwidth, kLowBandwidth}) {
        ExperimentRig rig(static_cast<uint64_t>(trial + 1), StrategyKind::kOdyssey);
        rig.sim().set_trace(g_trace_session->ClaimRecorderOnce());
        rig.distillation_server().PublishPage("http://origin/guide.html", 6.0 * kKb,
                                              {22.0 * kKb, 11.0 * kKb, 44.0 * kKb});
        const AppId app = rig.client().RegisterApplication("browser");
        rig.Replay(MakeConstant(bandwidth, 5 * kMinute), /*prime=*/false);
        const std::string path = std::string(kOdysseyRoot) + "web/page";
        rig.client().Tsop(app, path, kWebOpenPage, "http://origin/guide.html",
                          [](Status, std::string) {});
        rig.client().Tsop(app, path, kWebSetFidelity, PackStruct(WebSetFidelityRequest{level}),
                          [](Status, std::string) {});
        const Time start = rig.sim().now();
        Time end = start;
        WebPageFetchReply reply;
        // ody_lint: owned-capture
        rig.client().Tsop(app, path, kWebFetchPage, "", [&](Status status, std::string out) {
          if (!status.ok() || !UnpackStruct(out, &reply)) {
            reply = WebPageFetchReply{};
          }
          end = rig.sim().now();
        });
        rig.sim().RunUntil(start + kMinute);
        if (bandwidth == kHighBandwidth) {
          high_s.push_back(DurationToSeconds(end - start));
          bytes_kb.push_back((reply.html_bytes + reply.image_bytes) / kKb);
        } else {
          low_s.push_back(DurationToSeconds(end - start));
        }
      }
    }
    table.AddRow({WebFidelityName(static_cast<WebFidelity>(level)), MeanStd(bytes_kb, 1),
                  MeanStd(high_s, 2), MeanStd(low_s, 2)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: markup never shrinks, so page size floors at 6 KB; image\n"
               "distillation still buys a large latency win at the low bandwidth.\n";
}

// --- [3] Speech vocabulary levels ---

void RunVocabularySection() {
  std::cout << "\n[3] Recognition-fidelity levels (latency-goal sweep, 40 KB/s)\n";
  Table table({"goal s", "vocabulary", "fidelity", "achieved s"});
  for (const double goal : {0.0, 1.0, 0.75, 0.5, 0.3}) {
    std::vector<double> fidelity;
    std::vector<double> achieved;
    int vocabulary = 0;
    for (int trial = 0; trial < kPaperTrials; ++trial) {
      ExperimentRig rig(static_cast<uint64_t>(trial + 1), StrategyKind::kOdyssey);
      rig.sim().set_trace(g_trace_session->ClaimRecorderOnce());
      const AppId app = rig.client().RegisterApplication("speech");
      rig.Replay(MakeConstant(kLowBandwidth, 5 * kMinute), /*prime=*/false);
      const std::string path = std::string(kOdysseyRoot) + "speech/janus";
      // Warm the estimator, then the measured recognition.
      bool warm = false;
      rig.client().Tsop(app, path, kSpeechRecognize,
                        PackStruct(SpeechUtterance{kSpeechRawBytes, 0.0}),
                        [&](Status, std::string) { warm = true; });  // ody_lint: owned-capture
      rig.sim().RunUntil(rig.sim().now() + 10 * kSecond);
      const Time start = rig.sim().now();
      Time end = start;
      SpeechResult result;
      rig.client().Tsop(app, path, kSpeechRecognize,
                        PackStruct(SpeechUtterance{kSpeechRawBytes, goal}),
                        [&](Status status, std::string out) {  // ody_lint: owned-capture
                          if (!status.ok() || !UnpackStruct(out, &result)) {
                            result = SpeechResult{};
                          }
                          end = rig.sim().now();
                        });
      rig.sim().RunUntil(start + 30 * kSecond);
      fidelity.push_back(result.fidelity);
      achieved.push_back(DurationToSeconds(end - start));
      vocabulary = result.vocabulary;
    }
    table.AddRow({goal <= 0.0 ? "none" : Fmt(goal, 2), kSpeechVocabularies[vocabulary].name,
                  MeanStd(fidelity, 2), MeanStd(achieved, 2)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: tighter goals force smaller vocabularies — fidelity\n"
               "steps down 1.0 -> 0.7 -> 0.3 while recognition time tracks the goal.\n";
}

// --- [4] Battery and money across the urban walk ---

void RunResourceSection() {
  std::cout << "\n[4] Full-resource management on the urban walk (battery + money)\n";
  Table table({"trial", "MB moved", "battery left min", "money left cents",
               "battery upcall", "money upcall"});
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    ExperimentRig rig(static_cast<uint64_t>(trial + 1), StrategyKind::kOdyssey);
    rig.sim().set_trace(g_trace_session->ClaimRecorderOnce());
    BatteryModel::Config battery_config;
    battery_config.capacity_minutes = 60.0;
    battery_config.network_minutes_per_mb = 0.1;
    BatteryModel battery(&rig.sim(), &rig.client().viceroy(), &rig.link(), battery_config);
    MoneyMeter::Config money_config;
    money_config.budget_cents = 50.0;
    money_config.cents_per_mb = 0.6;
    MoneyMeter money(&rig.sim(), &rig.client().viceroy(), &rig.link(), money_config);

    VideoPlayerOptions video_options;
    video_options.frames_to_play = 10000;
    VideoPlayer video(&rig.client(), video_options);
    WebBrowser web(&rig.client(), WebBrowserOptions{});
    SpeechFrontEnd speech(&rig.client(), SpeechFrontEndOptions{});

    const AppId monitor = rig.client().RegisterApplication("resource-monitor");
    bool battery_warned = false;
    bool money_warned = false;
    ResourceDescriptor battery_window;
    battery_window.resource = ResourceId::kBatteryPower;
    battery_window.lower = 45.0;
    // ody_lint: owned-capture
    battery_window.handler = [&](RequestId, ResourceId, double) { battery_warned = true; };
    ResourceDescriptor money_window;
    money_window.resource = ResourceId::kMoney;
    money_window.lower = 30.0;
    // ody_lint: owned-capture
    money_window.handler = [&](RequestId, ResourceId, double) { money_warned = true; };

    const Time measure = rig.Replay(MakeUrbanScenario());
    battery.Start();
    money.Start();
    // Both resources start inside their windows (full battery, full budget);
    // a rejected request here would silently disable the warned-upcall path.
    const RequestResult battery_request = rig.client().Request(monitor, battery_window);
    ODY_ASSERT(battery_request.ok(), "battery already outside its window at registration");
    const RequestResult money_request = rig.client().Request(monitor, money_window);
    ODY_ASSERT(money_request.ok(), "money already outside its window at registration");
    video.Start();
    web.Start();
    speech.Start();
    rig.sim().RunUntil(measure + 15 * kMinute);

    table.AddRow({std::to_string(trial + 1),
                  Fmt(rig.link().bytes_delivered() / (1024.0 * 1024.0), 1),
                  Fmt(battery.remaining_minutes(), 1), Fmt(money.remaining_cents(), 1),
                  battery_warned ? "fired" : "-", money_warned ? "fired" : "-"});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: the 15.5-minute walk costs ~16 minutes of idle battery\n"
               "plus ~0.1 min/MB of radio energy; the battery window (lower bound 45\n"
               "min) fires mid-walk, the money window (30 cents) fires once ~20 cents\n"
               "of metered traffic has passed.\n";
}

// --- [5] Telemetry delivery levels ---

void RunTelemetrySection() {
  std::cout << "\n[5] Telemetry fidelity: sampling rate and timeliness (10 Hz feed)\n";
  Table table({"Level", "samples/min", "staleness ms", "alert lag s"});
  for (int level = 0; level < 3; ++level) {
    std::vector<double> rate;
    std::vector<double> staleness;
    std::vector<double> lag;
    for (int trial = 0; trial < kPaperTrials; ++trial) {
      ExperimentRig rig(static_cast<uint64_t>(trial + 1), StrategyKind::kOdyssey);
      rig.sim().set_trace(g_trace_session->ClaimRecorderOnce());
      TelemetryServer telemetry(&rig.sim());
      telemetry.CreateFeed("stocks/ACME", 100 * kMillisecond, 100.0, 0.05);
      auto* warden = static_cast<TelemetryWarden*>(
          rig.client().InstallWarden(std::make_unique<TelemetryWarden>(&telemetry)));
      FilterApp filter(&rig.client(), warden, FilterAppOptions{"stocks/ACME", 5.0, level});
      rig.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
      filter.Start();
      rig.sim().ScheduleAt(kMinute, [&telemetry] {  // ody_lint: owned-capture
        const Status injected = telemetry.InjectEvent("stocks/ACME", 25.0);
        ODY_ASSERT(injected.ok(), "event injected into an unknown feed");
      });
      rig.sim().RunUntil(2 * kMinute);
      filter.Stop();
      rig.sim().RunUntil(2 * kMinute + kSecond);
      rate.push_back(filter.final_stats().samples_delivered / 2.0);
      staleness.push_back(filter.final_stats().mean_staleness_ms);
      if (!filter.alerts().empty()) {
        lag.push_back(DurationToSeconds(filter.alerts()[0].detection_lag()));
      }
    }
    table.AddRow({kTelemetryLevels[level].name, MeanStd(rate, 1), MeanStd(staleness, 0),
                  MeanStd(lag, 2)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape: each level cuts the delivered sampling rate and grows\n"
               "staleness by roughly an order of magnitude; alert-detection lag tracks\n"
               "the timeliness fidelity (§2.2's telemetry dimensions).\n";
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  odyssey::PrintBanner("Extension Bench: the §8 Roadmap Features",
                       "consistency fidelity, page adaptation, vocabulary levels, full "
                       "resources; 5 trials");
  odyssey::RunFileSection();
  odyssey::RunPageSection();
  odyssey::RunVocabularySection();
  odyssey::RunResourceSection();
  odyssey::RunTelemetrySection();
  return trace_session.ExportOrWarn() ? 0 : 1;
}

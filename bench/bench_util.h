// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/metrics/trial.h"
#include "src/trace/trace_session.h"

namespace odyssey {

// Prints a figure banner.
inline void PrintBanner(const std::string& title, const std::string& subtitle) {
  std::cout << "\n==============================================================\n"
            << title << "\n"
            << subtitle << "\n"
            << "==============================================================\n";
}

// Formats a double with fixed precision.
inline std::string Fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

// Formats "mean (stddev)" from a set of samples, paper style.
inline std::string MeanStd(const std::vector<double>& samples, int precision = 2) {
  return Stats(samples).Format(precision);
}

// Prints a banded series (mean with min/max spread over trials) as table
// rows downsampled to |stride| points.
inline void PrintSeriesBand(const SeriesBand& band, const std::string& value_label,
                            size_t stride) {
  Table table({"t (s)", value_label + " mean", "min", "max"});
  for (size_t i = 0; i < band.t_seconds.size(); i += stride) {
    table.AddRow({Fmt(band.t_seconds[i], 1), Fmt(band.mean[i] / 1024.0, 1),
                  Fmt(band.min[i] / 1024.0, 1), Fmt(band.max[i] / 1024.0, 1)});
  }
  table.Print(std::cout);
}

}  // namespace odyssey

#endif  // BENCH_BENCH_UTIL_H_

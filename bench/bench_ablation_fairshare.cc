// Ablation: availability-formula design choices (not a paper figure).
//
// The per-connection availability estimate (§6.2.1) has two tunables the
// paper fixes implicitly: the width of the recent-use accounting window
// (usage tau) and the idle period after which a connection stops counting
// toward the fair-share split.  This bench reruns a shortened Figure 14
// workload under Odyssey for a sweep of each and reports how the
// concurrent applications fare.

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

struct WorkloadResult {
  std::vector<double> video_drops;
  std::vector<double> video_fidelity;
  std::vector<double> web_seconds;
  std::vector<double> web_goal_pct;  // fetches meeting the 0.4 s goal
};

WorkloadResult RunWorkload(const SupplyModelConfig& config) {
  WorkloadResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    const FairshareTrialResult outcome = RunFairshareAblationTrial(
        config, static_cast<uint64_t>(trial + 1), g_trace_session->ClaimRecorderOnce());
    result.video_drops.push_back(outcome.video_drops);
    result.video_fidelity.push_back(outcome.video_fidelity);
    result.web_seconds.push_back(outcome.web_seconds);
    result.web_goal_pct.push_back(outcome.web_goal_pct);
  }
  return result;
}

void PrintRow(Table& table, const std::string& label, const WorkloadResult& result) {
  table.AddRow({label, MeanStd(result.video_drops, 1), MeanStd(result.video_fidelity, 2),
                MeanStd(result.web_seconds, 2), MeanStd(result.web_goal_pct, 1)});
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Ablation: Availability-Formula Design Choices",
              "video+web+speech on a shortened urban walk under Odyssey; 5 trials");

  {
    std::cout << "\n[1] Recent-use window tau (default 2 s)\n";
    Table table({"tau s", "Video drops", "Video fidelity", "Web s", "Web goal-met %"});
    for (const double tau_s : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      SupplyModelConfig config;
      config.usage_tau = SecondsToDuration(tau_s);
      PrintRow(table, Fmt(tau_s, 1), RunWorkload(config));
    }
    table.Print(std::cout);
  }

  {
    std::cout << "\n[2] Fair-share activity window (default 5 s)\n";
    Table table({"window s", "Video drops", "Video fidelity", "Web s", "Web goal-met %"});
    for (const double window_s : {1.0, 2.0, 5.0, 15.0}) {
      SupplyModelConfig config;
      config.activity_window = SecondsToDuration(window_s);
      PrintRow(table, Fmt(window_s, 1), RunWorkload(config));
    }
    table.Print(std::cout);
  }

  std::cout << "\nExpected shape: very short usage windows make shares twitchy (more\n"
               "fidelity oscillation, more drops); very long windows make the viceroy\n"
               "slow to reclaim bandwidth from an application that has gone quiet.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

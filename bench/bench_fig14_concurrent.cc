// Figure 14 (with Figure 13): performance and fidelity of concurrent
// applications under three resource-management strategies.
//
// The video player, Web browser, and speech recognizer run concurrently
// over the 15-minute synthetic urban trace of Figure 13 under (a) Odyssey's
// centralized estimation, (b) laissez-faire per-log estimation, and (c)
// blind-optimism (theoretical bandwidth delivered at transitions).  Each
// row reports video drops and fidelity, Web seconds and fidelity, and
// speech seconds — mean (stddev) of five trials.

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

struct StrategyResult {
  std::vector<double> video_drops;
  std::vector<double> video_fidelity;
  std::vector<double> web_seconds;
  std::vector<double> web_fidelity;
  std::vector<double> speech_seconds;
};

StrategyResult RunStrategy(StrategyKind strategy) {
  StrategyResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    const ConcurrentTrialResult outcome =
        RunConcurrentTrial(strategy, static_cast<uint64_t>(trial + 1),
                           g_trace_session->ClaimRecorderOnce());
    result.video_drops.push_back(outcome.video_drops);
    result.video_fidelity.push_back(outcome.video_fidelity);
    result.web_seconds.push_back(outcome.web_seconds);
    result.web_fidelity.push_back(outcome.web_fidelity);
    result.speech_seconds.push_back(outcome.speech_seconds);
  }
  return result;
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Figure 14: Concurrent Applications under Three Strategies",
              "video + web + speech over the Figure 13 urban trace; 5 trials");

  std::cout << "\nFigure 13 trace (15 minutes, H=120 KB/s, L=40 KB/s):\n";
  const ReplayTrace trace = MakeUrbanScenario();
  for (const auto& segment : trace.segments()) {
    std::cout << "  " << Fmt(DurationToSeconds(segment.duration) / 60.0, 0) << " min @ "
              << Fmt(segment.bandwidth_bps / 1024.0, 0) << " KB/s\n";
  }

  Table table({"Strategy", "Video drops", "Video fidelity", "Web s", "Web fidelity",
               "Speech s"});
  for (const StrategyKind strategy :
       {StrategyKind::kOdyssey, StrategyKind::kLaissezFaire, StrategyKind::kBlindOptimism}) {
    const StrategyResult result = RunStrategy(strategy);
    table.AddRow({StrategyKindName(strategy), MeanStd(result.video_drops, 1),
                  MeanStd(result.video_fidelity, 2), MeanStd(result.web_seconds, 2),
                  MeanStd(result.web_fidelity, 2), MeanStd(result.speech_seconds, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nPaper reference:\n"
            << "  Odyssey:        1018 drops @0.25 | web 0.54s @0.47 | speech 1.00s\n"
            << "  Laissez-Faire:  2249 drops @0.39 | web 0.95s @0.93 | speech 1.21s\n"
            << "  Blind-Optimism: 5320 drops @0.80 | web 1.20s @1.00 | speech 1.26s\n"
            << "Shape to check: by degrading fetched video and web fidelity, Odyssey\n"
            << "comes a factor of 2-5 closer to each application's performance goals;\n"
            << "the uncoordinated strategies choose higher fidelity and miss them.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

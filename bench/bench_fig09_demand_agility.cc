// Figure 9: agility of bandwidth estimation under varying demand.
//
// One bitstream runs for thirty seconds of steady state; a second,
// identical bitstream then starts.  Both attempt 10%, 45%, or 100% of the
// nominal 120 KB/s throughput.  We report the total supply estimate (upper
// curve) and the second stream's availability estimate (lower curve) as
// mean and min/max spread over five trials, plus how long the second
// stream takes to reach its nominal share.

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

void RunUtilization(double utilization) {
  std::vector<Series> totals;
  std::vector<Series> shares;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    DemandTrialResult series =
        RunDemandAgilityTrial(utilization, static_cast<uint64_t>(trial + 1),
                              g_trace_session->ClaimRecorderOnce());
    totals.push_back(std::move(series.total));
    shares.push_back(std::move(series.second_share));
  }
  std::cout << "\n--- " << Fmt(utilization * 100.0, 0)
            << "% utilization/stream (second stream starts at t=30s) ---\n";
  std::cout << "[total estimated bandwidth]\n";
  PrintSeriesBand(MergeSeries(totals), "total (KB/s)", 20);
  std::cout << "[bandwidth available to second stream]\n";
  PrintSeriesBand(MergeSeries(shares), "share (KB/s)", 20);

  // The startup transient, quantified two ways: how long the *total*
  // estimate strays from nominal after the second stream starts, and how
  // long the second stream's share takes to reach 90% of its final value.
  std::vector<double> total_settle;
  for (const Series& series : totals) {
    total_settle.push_back(
        SettlingTime(series, 30.0, 0.85 * kHighBandwidth, 1.15 * kHighBandwidth));
  }
  std::vector<double> share_rise;
  for (const Series& series : shares) {
    const double final_share = series.empty() ? 0.0 : series.back().value;
    double reached = -1.0;
    for (const auto& point : series) {
      if (point.t_seconds >= 30.0 && point.value >= 0.9 * final_share) {
        reached = point.t_seconds - 30.0;
        break;
      }
    }
    share_rise.push_back(reached);
  }
  std::cout << "total estimate back within 15% of nominal after: " << MeanStd(total_settle, 2)
            << " s\n";
  std::cout << "second stream reaches 90% of its final share after: " << MeanStd(share_rise, 2)
            << " s\n";
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  odyssey::PrintBanner(
      "Figure 9: Demand Estimation Agility",
      "two bitstreams at 10/45/100% of nominal; estimates around the second start; 5 trials");
  for (const double utilization : {0.10, 0.45, 1.0}) {
    odyssey::RunUtilization(utilization);
  }
  std::cout << "\nPaper reference: a startup transient appears in all cases, much more\n"
               "pronounced at higher loads (~5 s settle at full utilization); at low\n"
               "utilization the second stream reaches its nominal value almost\n"
               "immediately, since the established stream carries little weight.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

// Figure 11: Web browser performance and fidelity.
//
// Netscape (through the cellophane) repeatedly fetches a 22 KB image as
// fast as possible via the distillation server under four static fidelity
// levels and Odyssey's adaptive selection, for each reference waveform.
// The adaptation goal is to display the best quality image fetched within
// twice the Ethernet time (0.4 s).  Each cell is the mean (stddev) of five
// trials of the average fetch-and-display seconds.

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

struct CellResult {
  std::vector<double> seconds;
  std::vector<double> fidelity;
};

CellResult RunCell(const ReplayTrace& trace, int fixed_level, bool prime) {
  CellResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    const WebTrialResult outcome =
        RunWebTrial(trace, fixed_level, prime, static_cast<uint64_t>(trial + 1),
                    g_trace_session->ClaimRecorderOnce());
    result.seconds.push_back(outcome.seconds);
    result.fidelity.push_back(outcome.fidelity);
  }
  return result;
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Figure 11: Web Browser Performance and Fidelity",
              "repeated 22KB image fetch; goal <= 0.4s; mean (stddev) seconds of 5 trials");

  // The private-Ethernet baseline (full quality, fast wired network).
  const CellResult ethernet = RunCell(MakeEthernetBaseline(kWaveformLength), 0, false);
  Table table({"Waveform", "JPEG(5) s", "JPEG(25) s", "JPEG(50) s", "Full Quality s",
               "Odyssey s", "Odyssey fidelity"});
  table.AddRow({"Ethernet", "-", "-", "-", MeanStd(ethernet.seconds, 2), "-", "-"});
  for (const Waveform waveform : AllWaveforms()) {
    const ReplayTrace trace = MakeWaveform(waveform);
    const CellResult jpeg5 = RunCell(trace, 3, true);
    const CellResult jpeg25 = RunCell(trace, 2, true);
    const CellResult jpeg50 = RunCell(trace, 1, true);
    const CellResult full = RunCell(trace, 0, true);
    const CellResult adaptive = RunCell(trace, -1, true);
    table.AddRow({WaveformName(waveform), MeanStd(jpeg5.seconds, 2), MeanStd(jpeg25.seconds, 2),
                  MeanStd(jpeg50.seconds, 2), MeanStd(full.seconds, 2),
                  MeanStd(adaptive.seconds, 2), MeanStd(adaptive.fidelity, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nStatic fidelities: JPEG(5)=0.05, JPEG(25)=0.25, JPEG(50)=0.5, Full=1.0.\n"
            << "Paper reference (seconds; Odyssey fidelity): Ethernet 0.20\n"
            << "  Step-Up:    0.25  0.30  0.29  0.46  | 0.35 @0.78\n"
            << "  Step-Down:  0.25  0.30  0.29  0.46  | 0.35 @0.77\n"
            << "  Impulse-Up: 0.27  0.33  0.34  0.71  | 0.42 @0.63\n"
            << "  Impulse-Dn: 0.24  0.27  0.29  0.34  | 0.36 @0.99\n"
            << "Shape to check: the full-quality static strategy only meets the 0.4 s goal\n"
            << "on Impulse-Down; Odyssey meets it on every waveform at better fidelity\n"
            << "than any sufficiently fast static strategy.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

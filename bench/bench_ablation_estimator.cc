// Ablation: estimator design choices (not a paper figure).
//
// DESIGN.md calls out three estimator parameters whose values the paper
// fixes without exploration; this bench sweeps each and reports its effect
// on Step-Up/Step-Down settling time and steady-state estimate error,
// using the Figure 8 methodology.
//
//   1. The supply upper-envelope window (this implementation's analogue of
//      the paper's smoothing choice; it sets downward agility).
//   2. The bulk-transfer window size (the source of the Step-Down settling
//      delay: a drop is not recorded until the window in flight ends).
//   3. The round-trip rise cap (paper: capped; here swept and disabled).

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

struct AgilityResult {
  std::vector<double> step_up_settle;
  std::vector<double> step_down_settle;
  std::vector<double> steady_error_pct;
};

// Runs Step-Up and Step-Down with the given estimator configuration and
// bitstream window size.
AgilityResult RunConfig(const SupplyModelConfig& config, double window_bytes) {
  AgilityResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    for (const Waveform waveform : {Waveform::kStepUp, Waveform::kStepDown}) {
      const EstimatorAblationTrialResult outcome = RunEstimatorAblationTrial(
          config, window_bytes, waveform, static_cast<uint64_t>(trial + 1),
          g_trace_session->ClaimRecorderOnce());
      if (waveform == Waveform::kStepUp) {
        result.step_up_settle.push_back(outcome.settle_s);
      } else {
        result.step_down_settle.push_back(outcome.settle_s);
      }
      result.steady_error_pct.push_back(outcome.steady_error_pct);
    }
  }
  return result;
}

void PrintRow(Table& table, const std::string& label, const AgilityResult& result) {
  table.AddRow({label, MeanStd(result.step_up_settle, 2), MeanStd(result.step_down_settle, 2),
                MeanStd(result.steady_error_pct, 1)});
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Ablation: Estimator Design Choices",
              "settling time (s) and steady-state error (%) on Step waveforms; 5 trials");

  {
    std::cout << "\n[1] Supply upper-envelope window (default 2 s) — the direct control on\n"
                 "    downward agility: a capacity drop is detected once stale high samples\n"
                 "    age out of the envelope\n";
    Table table({"window s", "Step-Up settle s", "Step-Down settle s", "steady error %"});
    for (const double window_s : {0.5, 1.0, 2.0, 4.0}) {
      SupplyModelConfig config;
      config.supply_window = SecondsToDuration(window_s);
      PrintRow(table, Fmt(window_s, 1), RunConfig(config, kDefaultWindowBytes));
    }
    table.Print(std::cout);
  }

  {
    std::cout << "\n[2] Bulk-transfer window size (paper artifact: estimates complete at "
                 "window end)\n";
    Table table({"window KB", "Step-Up settle s", "Step-Down settle s", "steady error %"});
    for (const double window_kb : {16.0, 32.0, 64.0, 128.0}) {
      SupplyModelConfig config;
      PrintRow(table, Fmt(window_kb, 0), RunConfig(config, window_kb * 1024.0));
    }
    table.Print(std::cout);
  }

  {
    std::cout << "\n[3] Round-trip rise cap (paper: cap anomalous rises)\n";
    Table table({"rise cap", "Step-Up settle s", "Step-Down settle s", "steady error %"});
    for (const double cap : {0.0, 0.25, 0.5, 2.0}) {
      SupplyModelConfig config;
      config.estimator.rtt_rise_cap = cap;
      PrintRow(table, cap <= 0.0 ? "off" : Fmt(cap, 2), RunConfig(config, kDefaultWindowBytes));
    }
    table.Print(std::cout);
  }

  std::cout << "\nExpected shape: narrower supply and transfer windows improve Step-Down\n"
               "settling (stale high samples age out sooner; drops are recorded at window\n"
               "end) at the cost of steadiness under burstier workloads; the rise cap\n"
               "trades a small bandwidth underestimate for round-trip outlier immunity.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

// Ablation: estimator design choices (not a paper figure).
//
// DESIGN.md calls out three estimator parameters whose values the paper
// fixes without exploration; this bench sweeps each and reports its effect
// on Step-Up/Step-Down settling time and steady-state estimate error,
// using the Figure 8 methodology.
//
//   1. The supply upper-envelope window (this implementation's analogue of
//      the paper's smoothing choice; it sets downward agility).
//   2. The bulk-transfer window size (the source of the Step-Down settling
//      delay: a drop is not recorded until the window in flight ends).
//   3. The round-trip rise cap (paper: capped; here swept and disabled).

#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/bitstream_app.h"
#include "src/metrics/experiment.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

struct AgilityResult {
  std::vector<double> step_up_settle;
  std::vector<double> step_down_settle;
  std::vector<double> steady_error_pct;
};

// Runs Step-Up and Step-Down with the given estimator configuration and
// bitstream window size.
AgilityResult RunConfig(const SupplyModelConfig& config, double window_bytes) {
  AgilityResult result;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    for (const Waveform waveform : {Waveform::kStepUp, Waveform::kStepDown}) {
      // Hand-built rig: the swept estimator configuration replaces the
      // ExperimentRig default.
      Simulation sim(static_cast<uint64_t>(trial + 1));
      sim.set_trace(ClaimTraceOnce(g_trace_session));
      Link link(&sim, kHighBandwidth, kOneWayLatency);
      Modulator modulator(&sim, &link);
      auto strategy = std::make_unique<CentralizedStrategy>(&sim, config);
      CentralizedStrategy* centralized = strategy.get();
      OdysseyClient client(&sim, &link, std::move(strategy));
      client.InstallWarden(std::make_unique<BitstreamWarden>());
      BitstreamApp app(&client, "bitstream");

      const ReplayTrace trace = MakeWaveform(waveform).WithPriming(kPrimingPeriod);
      modulator.Replay(trace);
      const Time measure = kPrimingPeriod;
      app.Start(0.0, window_bytes);
      Sampler sampler(&sim, 100 * kMillisecond, measure, [&] {
        return centralized->TotalSupply(sim.now());
      });
      sim.ScheduleAt(measure, [&] { sampler.Run(measure + kWaveformLength); });
      sim.RunUntil(measure + kWaveformLength);

      const double target = waveform == Waveform::kStepUp ? kHighBandwidth : kLowBandwidth;
      const double settle =
          SettlingTime(sampler.series(), 30.0, 0.85 * target, 1.15 * target);
      if (waveform == Waveform::kStepUp) {
        result.step_up_settle.push_back(settle);
      } else {
        result.step_down_settle.push_back(settle);
      }
      // Steady-state error over the pre-transition half.
      double error_sum = 0.0;
      int error_count = 0;
      const double pre = waveform == Waveform::kStepUp ? kLowBandwidth : kHighBandwidth;
      for (const auto& point : sampler.series()) {
        if (point.t_seconds > 10.0 && point.t_seconds < 29.0) {
          error_sum += 100.0 * std::abs(point.value - pre) / pre;
          ++error_count;
        }
      }
      if (error_count > 0) {
        result.steady_error_pct.push_back(error_sum / error_count);
      }
    }
  }
  return result;
}

void PrintRow(Table& table, const std::string& label, const AgilityResult& result) {
  table.AddRow({label, MeanStd(result.step_up_settle, 2), MeanStd(result.step_down_settle, 2),
                MeanStd(result.steady_error_pct, 1)});
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Ablation: Estimator Design Choices",
              "settling time (s) and steady-state error (%) on Step waveforms; 5 trials");

  {
    std::cout << "\n[1] Supply upper-envelope window (default 2 s) — the direct control on\n"
                 "    downward agility: a capacity drop is detected once stale high samples\n"
                 "    age out of the envelope\n";
    Table table({"window s", "Step-Up settle s", "Step-Down settle s", "steady error %"});
    for (const double window_s : {0.5, 1.0, 2.0, 4.0}) {
      SupplyModelConfig config;
      config.supply_window = SecondsToDuration(window_s);
      PrintRow(table, Fmt(window_s, 1), RunConfig(config, kDefaultWindowBytes));
    }
    table.Print(std::cout);
  }

  {
    std::cout << "\n[2] Bulk-transfer window size (paper artifact: estimates complete at "
                 "window end)\n";
    Table table({"window KB", "Step-Up settle s", "Step-Down settle s", "steady error %"});
    for (const double window_kb : {16.0, 32.0, 64.0, 128.0}) {
      SupplyModelConfig config;
      PrintRow(table, Fmt(window_kb, 0), RunConfig(config, window_kb * 1024.0));
    }
    table.Print(std::cout);
  }

  {
    std::cout << "\n[3] Round-trip rise cap (paper: cap anomalous rises)\n";
    Table table({"rise cap", "Step-Up settle s", "Step-Down settle s", "steady error %"});
    for (const double cap : {0.0, 0.25, 0.5, 2.0}) {
      SupplyModelConfig config;
      config.estimator.rtt_rise_cap = cap;
      PrintRow(table, cap <= 0.0 ? "off" : Fmt(cap, 2), RunConfig(config, kDefaultWindowBytes));
    }
    table.Print(std::cout);
  }

  std::cout << "\nExpected shape: narrower supply and transfer windows improve Step-Down\n"
               "settling (stale high samples age out sooner; drops are recorded at window\n"
               "end) at the cost of steadiness under burstier workloads; the rise cap\n"
               "trades a small bandwidth underestimate for round-trip outlier immunity.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

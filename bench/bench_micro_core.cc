// Microbenchmarks for the core Odyssey mechanisms (google-benchmark).
//
// The paper argues the user-level architecture is cheap enough for agile
// adaptation; these measure the per-operation costs of the mechanisms on
// the adaptation path: event scheduling, upcall delivery, request
// registration, estimator updates, and tsop dispatch.

#include <benchmark/benchmark.h>

#include "src/core/odyssey_client.h"
#include "src/core/request_table.h"
#include "src/core/tsop_codec.h"
#include "src/core/upcall.h"
#include "src/estimator/connection_estimator.h"
#include "src/estimator/supply_model.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"
#include "src/strategies/laissez_faire.h"
#include "src/trace/trace_macros.h"
#include "src/trace/trace_recorder.h"
#include "src/wardens/bitstream_warden.h"

namespace odyssey {
namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  Simulation sim;
  int sink = 0;
  for (auto _ : state) {
    sim.Schedule(1, [&] { ++sink; });  // ody_lint: owned-capture
    sim.Step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventScheduleAndRun);

void BM_EventCancel(benchmark::State& state) {
  Simulation sim;
  for (auto _ : state) {
    EventHandle handle = sim.Schedule(1000000, [] {});
    handle.Cancel();
  }
}
BENCHMARK(BM_EventCancel);

void BM_UpcallPostAndDeliver(benchmark::State& state) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  int sink = 0;
  UpcallHandler handler = [&](RequestId, ResourceId, double) { ++sink; };
  for (auto _ : state) {
    dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0, handler);
    sim.Step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_UpcallPostAndDeliver);

void BM_RequestRegisterCancel(benchmark::State& state) {
  RequestTable table;
  ResourceDescriptor descriptor{ResourceId::kNetworkBandwidth, 0.0, 1e9, nullptr};
  for (auto _ : state) {
    const RequestId id = table.Register(1, descriptor);
    benchmark::DoNotOptimize(table.Cancel(id));
  }
}
BENCHMARK(BM_RequestRegisterCancel);

void BM_RequestTableTakeViolated(benchmark::State& state) {
  // A table with many registered windows, one violated per call.
  for (auto _ : state) {
    state.PauseTiming();
    RequestTable table;
    for (int i = 0; i < state.range(0); ++i) {
      table.Register(i, ResourceDescriptor{ResourceId::kNetworkBandwidth,
                                           static_cast<double>(i), 1e12, nullptr});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        table.TakeViolated(ResourceId::kNetworkBandwidth, state.range(0) - 1, 0.0));
  }
}
BENCHMARK(BM_RequestTableTakeViolated)->Arg(16)->Arg(256);

void BM_EstimatorThroughputUpdate(benchmark::State& state) {
  ConnectionEstimator estimator;
  ThroughputObservation obs{0, 65536.0, 521 * kMillisecond};
  for (auto _ : state) {
    obs.at += 500 * kMillisecond;
    benchmark::DoNotOptimize(estimator.OnThroughput(obs));
  }
}
BENCHMARK(BM_EstimatorThroughputUpdate);

void BM_SupplyModelObservation(benchmark::State& state) {
  SupplyModel model;
  const int connections = static_cast<int>(state.range(0));
  for (int i = 0; i < connections; ++i) {
    model.AddConnection(i + 1);
  }
  ThroughputObservation obs{0, 65536.0, 521 * kMillisecond};
  ConnectionId next = 1;
  for (auto _ : state) {
    obs.at += 50 * kMillisecond;
    model.OnThroughput(next, obs);
    next = next % connections + 1;
  }
  benchmark::DoNotOptimize(model.TotalSupply());
}
BENCHMARK(BM_SupplyModelObservation)->Arg(1)->Arg(4)->Arg(16);

void BM_AvailabilityQuery(benchmark::State& state) {
  SupplyModel model;
  const int connections = static_cast<int>(state.range(0));
  Time at = 0;
  for (int i = 0; i < connections; ++i) {
    model.AddConnection(i + 1);
    for (int w = 0; w < 8; ++w) {
      at += 50 * kMillisecond;
      model.OnThroughput(i + 1, {at, 65536.0, 521 * kMillisecond});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.AvailabilityFor(1, at));
  }
}
BENCHMARK(BM_AvailabilityQuery)->Arg(1)->Arg(4)->Arg(16);

// --- Scaled-core microbenchmarks ----------------------------------------
//
// The scale work's claims, measured in isolation: event-queue operations
// stay logarithmic in the number of pending events, and an observation
// followed by an availability query is O(1) on the incremental supply
// model where the naive model rescans every connection.

void BM_EventQueuePushPopAtDepth(benchmark::State& state) {
  Simulation sim;
  // |range(0)| events pending far in the future form the standing depth.
  for (int i = 0; i < state.range(0); ++i) {
    sim.Schedule(kSecond * 1000000, [] {});
  }
  int sink = 0;
  for (auto _ : state) {
    sim.Schedule(1, [&] { ++sink; });  // ody_lint: owned-capture
    sim.Step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueuePushPopAtDepth)->Arg(1)->Arg(100)->Arg(10000);

void BM_EventCancelAtDepth(benchmark::State& state) {
  Simulation sim;
  for (int i = 0; i < state.range(0); ++i) {
    sim.Schedule(kSecond * 1000000, [] {});
  }
  for (auto _ : state) {
    EventHandle handle = sim.Schedule(kSecond * 500000, [] {});
    handle.Cancel();
  }
}
BENCHMARK(BM_EventCancelAtDepth)->Arg(1)->Arg(100)->Arg(10000);

// One observation plus one availability query against a population of
// |range(0)| connections — the per-event unit of work on the adaptation
// hot path.  Run with kIncremental and kNaive to see the rescan cost the
// incremental model removes.
void RunSupplyRecompute(benchmark::State& state, SupplyModelKind kind) {
  std::unique_ptr<SupplyModelInterface> model = MakeSupplyModel(kind, SupplyModelConfig{});
  const int connections = static_cast<int>(state.range(0));
  Time at = 0;
  for (int i = 0; i < connections; ++i) {
    model->AddConnection(i + 1);
    at += kMillisecond;
    model->OnThroughput(i + 1, {at, 65536.0, 521 * kMillisecond});
  }
  ConnectionId next = 1;
  for (auto _ : state) {
    at += 50 * kMillisecond;
    model->OnThroughput(next, {at, 65536.0, 521 * kMillisecond});
    benchmark::DoNotOptimize(model->AvailabilityFor(next, at));
    next = next % connections + 1;
  }
}

void BM_SupplyRecomputeIncremental(benchmark::State& state) {
  RunSupplyRecompute(state, SupplyModelKind::kIncremental);
}
BENCHMARK(BM_SupplyRecomputeIncremental)->Arg(1)->Arg(100)->Arg(10000);

void BM_SupplyRecomputeNaive(benchmark::State& state) {
  RunSupplyRecompute(state, SupplyModelKind::kNaive);
}
BENCHMARK(BM_SupplyRecomputeNaive)->Arg(1)->Arg(100)->Arg(10000);

void BM_TsopDispatch(benchmark::State& state) {
  Simulation sim;
  Link link(&sim, 1e9, 0);
  OdysseyClient client(&sim, &link, std::make_unique<LaissezFaireStrategy>());
  client.InstallWarden(std::make_unique<BitstreamWarden>());
  const AppId app = client.RegisterApplication("bench");
  const std::string path = std::string(kOdysseyRoot) + "bitstream/stream";
  for (auto _ : state) {
    // An unknown opcode exercises resolution + dispatch + completion.
    client.Tsop(app, path, 999, "", [](Status, std::string) {});
  }
}
BENCHMARK(BM_TsopDispatch);

void BM_TsopCodecRoundTrip(benchmark::State& state) {
  BitstreamParams params{1234.0, 65536.0};
  for (auto _ : state) {
    const std::string packed = PackStruct(params);
    BitstreamParams out;
    benchmark::DoNotOptimize(UnpackStruct(packed, &out));
  }
}
BENCHMARK(BM_TsopCodecRoundTrip);

// Tracing cost, both sides of the opt-in switch: recording one instant into
// an enabled ring buffer, and the same macro against a null recorder (the
// state every instrumented call site is in on untraced runs — the <1%
// regression budget for the instrumentation rests on this being a single
// predictable branch).
void BM_TraceInstantRecord(benchmark::State& state) {
  TraceRecorder recorder(1 << 16, TraceRecorder::OverflowPolicy::kOverwriteOldest);
  Time now = 0;
  for (auto _ : state) {
    ++now;
    ODY_TRACE_INSTANT1(&recorder, kSim, "bench_tick", now, 1, "value", 42);
  }
  benchmark::DoNotOptimize(recorder.recorded_count());
}
BENCHMARK(BM_TraceInstantRecord);

void BM_TraceRecordDisabled(benchmark::State& state) {
  TraceRecorder* recorder = nullptr;
  benchmark::DoNotOptimize(recorder);
  Time now = 0;
  for (auto _ : state) {
    ++now;
    ODY_TRACE_INSTANT1(recorder, kSim, "bench_tick", now, 1, "value", 42);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceRecordDisabled);

void BM_UpcallPostAndDeliverTraced(benchmark::State& state) {
  Simulation sim;
  TraceRecorder recorder(1 << 16, TraceRecorder::OverflowPolicy::kOverwriteOldest);
  sim.set_trace(&recorder);
  UpcallDispatcher dispatcher(&sim);
  int sink = 0;
  UpcallHandler handler = [&](RequestId, ResourceId, double) { ++sink; };
  for (auto _ : state) {
    dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0, handler);
    sim.Step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_UpcallPostAndDeliverTraced);

}  // namespace
}  // namespace odyssey

BENCHMARK_MAIN();

// Figure 12: speech recognizer performance.
//
// A single short phrase is recognized repeatedly as fast as possible under
// the always-hybrid and always-remote static strategies and Odyssey's
// adaptive plan selection, for each reference waveform.  Recognition
// quality does not vary, so speed is the only metric.  Each cell is the
// mean (stddev) of five trials of the average recognition seconds.

#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/scenarios.h"

namespace odyssey {
namespace {

// Set by main(); the first trial claims the --trace-out recorder.
TraceSession* g_trace_session = nullptr;

std::vector<double> RunCell(Waveform waveform, SpeechMode mode) {
  std::vector<double> seconds;
  for (int trial = 0; trial < kPaperTrials; ++trial) {
    seconds.push_back(RunSpeechTrialSeconds(waveform, mode, static_cast<uint64_t>(trial + 1),
                                            g_trace_session->ClaimRecorderOnce()));
  }
  return seconds;
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::TraceSession trace_session = odyssey::TraceSession::FromArgs(&argc, argv);
  odyssey::g_trace_session = &trace_session;
  using namespace odyssey;
  PrintBanner("Figure 12: Speech Recognizer Performance",
              "repeated short-phrase recognition; mean (stddev) seconds of 5 trials");

  Table table({"Waveform", "Always Hybrid s", "Always Remote s", "Odyssey s"});
  for (const Waveform waveform : AllWaveforms()) {
    table.AddRow({WaveformName(waveform),
                  MeanStd(RunCell(waveform, SpeechMode::kAlwaysHybrid), 2),
                  MeanStd(RunCell(waveform, SpeechMode::kAlwaysRemote), 2),
                  MeanStd(RunCell(waveform, SpeechMode::kAdaptive), 2)});
  }
  table.Print(std::cout);

  std::cout << "\nPaper reference (hybrid / remote / Odyssey seconds):\n"
            << "  Step-Up:    0.80 / 0.91 / 0.80\n"
            << "  Step-Down:  0.80 / 0.90 / 0.80\n"
            << "  Impulse-Up: 0.85 / 1.11 / 0.85\n"
            << "  Impulse-Dn: 0.76 / 0.77 / 0.76\n"
            << "Shape to check: hybrid is the correct strategy at both reference\n"
            << "bandwidths, and Odyssey duplicates it on every waveform.\n";
  return trace_session.ExportOrWarn() ? 0 : 1;
}

file(REMOVE_RECURSE
  "../bench/bench_fig10_video"
  "../bench/bench_fig10_video.pdb"
  "CMakeFiles/bench_fig10_video.dir/bench_fig10_video.cc.o"
  "CMakeFiles/bench_fig10_video.dir/bench_fig10_video.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

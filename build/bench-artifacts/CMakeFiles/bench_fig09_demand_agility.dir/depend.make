# Empty dependencies file for bench_fig09_demand_agility.
# This may be replaced when dependencies are built.

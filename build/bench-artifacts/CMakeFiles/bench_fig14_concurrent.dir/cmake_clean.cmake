file(REMOVE_RECURSE
  "../bench/bench_fig14_concurrent"
  "../bench/bench_fig14_concurrent.pdb"
  "CMakeFiles/bench_fig14_concurrent.dir/bench_fig14_concurrent.cc.o"
  "CMakeFiles/bench_fig14_concurrent.dir/bench_fig14_concurrent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ext_adaptation"
  "../bench/bench_ext_adaptation.pdb"
  "CMakeFiles/bench_ext_adaptation.dir/bench_ext_adaptation.cc.o"
  "CMakeFiles/bench_ext_adaptation.dir/bench_ext_adaptation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_adaptation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig11_web"
  "../bench/bench_fig11_web.pdb"
  "CMakeFiles/bench_fig11_web.dir/bench_fig11_web.cc.o"
  "CMakeFiles/bench_fig11_web.dir/bench_fig11_web.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_web.cc" "bench-artifacts/CMakeFiles/bench_fig11_web.dir/bench_fig11_web.cc.o" "gcc" "bench-artifacts/CMakeFiles/bench_fig11_web.dir/bench_fig11_web.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odyssey_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_wardens.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_tracemod.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

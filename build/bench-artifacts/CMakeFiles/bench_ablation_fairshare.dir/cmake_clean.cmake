file(REMOVE_RECURSE
  "../bench/bench_ablation_fairshare"
  "../bench/bench_ablation_fairshare.pdb"
  "CMakeFiles/bench_ablation_fairshare.dir/bench_ablation_fairshare.cc.o"
  "CMakeFiles/bench_ablation_fairshare.dir/bench_ablation_fairshare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

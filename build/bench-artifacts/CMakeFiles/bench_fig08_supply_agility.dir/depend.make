# Empty dependencies file for bench_fig08_supply_agility.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig12_speech"
  "../bench/bench_fig12_speech.pdb"
  "CMakeFiles/bench_fig12_speech.dir/bench_fig12_speech.cc.o"
  "CMakeFiles/bench_fig12_speech.dir/bench_fig12_speech.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig12_speech.
# This may be replaced when dependencies are built.

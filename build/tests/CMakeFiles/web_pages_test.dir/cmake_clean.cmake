file(REMOVE_RECURSE
  "CMakeFiles/web_pages_test.dir/web_pages_test.cc.o"
  "CMakeFiles/web_pages_test.dir/web_pages_test.cc.o.d"
  "web_pages_test"
  "web_pages_test.pdb"
  "web_pages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_pages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for web_pages_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for wardens_test.
# This may be replaced when dependencies are built.

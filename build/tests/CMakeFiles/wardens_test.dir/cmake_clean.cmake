file(REMOVE_RECURSE
  "CMakeFiles/wardens_test.dir/wardens_test.cc.o"
  "CMakeFiles/wardens_test.dir/wardens_test.cc.o.d"
  "wardens_test"
  "wardens_test.pdb"
  "wardens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wardens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

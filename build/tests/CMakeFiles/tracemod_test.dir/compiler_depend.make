# Empty compiler generated dependencies file for tracemod_test.
# This may be replaced when dependencies are built.

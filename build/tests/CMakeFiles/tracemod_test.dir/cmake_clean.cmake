file(REMOVE_RECURSE
  "CMakeFiles/tracemod_test.dir/tracemod_test.cc.o"
  "CMakeFiles/tracemod_test.dir/tracemod_test.cc.o.d"
  "tracemod_test"
  "tracemod_test.pdb"
  "tracemod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ship_planner_test.dir/ship_planner_test.cc.o"
  "CMakeFiles/ship_planner_test.dir/ship_planner_test.cc.o.d"
  "ship_planner_test"
  "ship_planner_test.pdb"
  "ship_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ship_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ship_planner_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tracemod_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/namespace_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/wardens_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/resources_test[1]_include.cmake")
include("/root/repo/build/tests/ship_planner_test[1]_include.cmake")
include("/root/repo/build/tests/web_pages_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")

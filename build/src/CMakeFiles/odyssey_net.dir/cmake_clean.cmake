file(REMOVE_RECURSE
  "CMakeFiles/odyssey_net.dir/net/link.cc.o"
  "CMakeFiles/odyssey_net.dir/net/link.cc.o.d"
  "CMakeFiles/odyssey_net.dir/net/modulator.cc.o"
  "CMakeFiles/odyssey_net.dir/net/modulator.cc.o.d"
  "libodyssey_net.a"
  "libodyssey_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

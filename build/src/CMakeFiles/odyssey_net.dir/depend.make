# Empty dependencies file for odyssey_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libodyssey_net.a"
)

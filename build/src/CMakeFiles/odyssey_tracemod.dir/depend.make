# Empty dependencies file for odyssey_tracemod.
# This may be replaced when dependencies are built.

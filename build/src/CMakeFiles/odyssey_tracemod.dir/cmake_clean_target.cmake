file(REMOVE_RECURSE
  "libodyssey_tracemod.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/odyssey_tracemod.dir/tracemod/replay_trace.cc.o"
  "CMakeFiles/odyssey_tracemod.dir/tracemod/replay_trace.cc.o.d"
  "CMakeFiles/odyssey_tracemod.dir/tracemod/waveforms.cc.o"
  "CMakeFiles/odyssey_tracemod.dir/tracemod/waveforms.cc.o.d"
  "libodyssey_tracemod.a"
  "libodyssey_tracemod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_tracemod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libodyssey_servers.a"
)

# Empty dependencies file for odyssey_servers.
# This may be replaced when dependencies are built.

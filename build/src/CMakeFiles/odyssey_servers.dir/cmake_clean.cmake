file(REMOVE_RECURSE
  "CMakeFiles/odyssey_servers.dir/servers/distillation_server.cc.o"
  "CMakeFiles/odyssey_servers.dir/servers/distillation_server.cc.o.d"
  "CMakeFiles/odyssey_servers.dir/servers/file_server.cc.o"
  "CMakeFiles/odyssey_servers.dir/servers/file_server.cc.o.d"
  "CMakeFiles/odyssey_servers.dir/servers/janus_server.cc.o"
  "CMakeFiles/odyssey_servers.dir/servers/janus_server.cc.o.d"
  "CMakeFiles/odyssey_servers.dir/servers/telemetry_server.cc.o"
  "CMakeFiles/odyssey_servers.dir/servers/telemetry_server.cc.o.d"
  "CMakeFiles/odyssey_servers.dir/servers/video_server.cc.o"
  "CMakeFiles/odyssey_servers.dir/servers/video_server.cc.o.d"
  "libodyssey_servers.a"
  "libodyssey_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wardens/bitstream_warden.cc" "src/CMakeFiles/odyssey_wardens.dir/wardens/bitstream_warden.cc.o" "gcc" "src/CMakeFiles/odyssey_wardens.dir/wardens/bitstream_warden.cc.o.d"
  "/root/repo/src/wardens/file_warden.cc" "src/CMakeFiles/odyssey_wardens.dir/wardens/file_warden.cc.o" "gcc" "src/CMakeFiles/odyssey_wardens.dir/wardens/file_warden.cc.o.d"
  "/root/repo/src/wardens/speech_warden.cc" "src/CMakeFiles/odyssey_wardens.dir/wardens/speech_warden.cc.o" "gcc" "src/CMakeFiles/odyssey_wardens.dir/wardens/speech_warden.cc.o.d"
  "/root/repo/src/wardens/telemetry_warden.cc" "src/CMakeFiles/odyssey_wardens.dir/wardens/telemetry_warden.cc.o" "gcc" "src/CMakeFiles/odyssey_wardens.dir/wardens/telemetry_warden.cc.o.d"
  "/root/repo/src/wardens/video_warden.cc" "src/CMakeFiles/odyssey_wardens.dir/wardens/video_warden.cc.o" "gcc" "src/CMakeFiles/odyssey_wardens.dir/wardens/video_warden.cc.o.d"
  "/root/repo/src/wardens/web_warden.cc" "src/CMakeFiles/odyssey_wardens.dir/wardens/web_warden.cc.o" "gcc" "src/CMakeFiles/odyssey_wardens.dir/wardens/web_warden.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odyssey_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_tracemod.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for odyssey_wardens.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/odyssey_wardens.dir/wardens/bitstream_warden.cc.o"
  "CMakeFiles/odyssey_wardens.dir/wardens/bitstream_warden.cc.o.d"
  "CMakeFiles/odyssey_wardens.dir/wardens/file_warden.cc.o"
  "CMakeFiles/odyssey_wardens.dir/wardens/file_warden.cc.o.d"
  "CMakeFiles/odyssey_wardens.dir/wardens/speech_warden.cc.o"
  "CMakeFiles/odyssey_wardens.dir/wardens/speech_warden.cc.o.d"
  "CMakeFiles/odyssey_wardens.dir/wardens/telemetry_warden.cc.o"
  "CMakeFiles/odyssey_wardens.dir/wardens/telemetry_warden.cc.o.d"
  "CMakeFiles/odyssey_wardens.dir/wardens/video_warden.cc.o"
  "CMakeFiles/odyssey_wardens.dir/wardens/video_warden.cc.o.d"
  "CMakeFiles/odyssey_wardens.dir/wardens/web_warden.cc.o"
  "CMakeFiles/odyssey_wardens.dir/wardens/web_warden.cc.o.d"
  "libodyssey_wardens.a"
  "libodyssey_wardens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_wardens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

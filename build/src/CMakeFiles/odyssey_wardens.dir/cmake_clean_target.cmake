file(REMOVE_RECURSE
  "libodyssey_wardens.a"
)

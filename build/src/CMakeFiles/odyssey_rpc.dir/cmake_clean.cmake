file(REMOVE_RECURSE
  "CMakeFiles/odyssey_rpc.dir/rpc/endpoint.cc.o"
  "CMakeFiles/odyssey_rpc.dir/rpc/endpoint.cc.o.d"
  "libodyssey_rpc.a"
  "libodyssey_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for odyssey_rpc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libodyssey_rpc.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/odyssey_estimator.dir/estimator/connection_estimator.cc.o"
  "CMakeFiles/odyssey_estimator.dir/estimator/connection_estimator.cc.o.d"
  "CMakeFiles/odyssey_estimator.dir/estimator/supply_model.cc.o"
  "CMakeFiles/odyssey_estimator.dir/estimator/supply_model.cc.o.d"
  "libodyssey_estimator.a"
  "libodyssey_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

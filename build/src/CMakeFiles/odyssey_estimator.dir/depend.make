# Empty dependencies file for odyssey_estimator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libodyssey_estimator.a"
)

# Empty dependencies file for odyssey_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libodyssey_metrics.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/odyssey_metrics.dir/metrics/experiment.cc.o"
  "CMakeFiles/odyssey_metrics.dir/metrics/experiment.cc.o.d"
  "CMakeFiles/odyssey_metrics.dir/metrics/stats.cc.o"
  "CMakeFiles/odyssey_metrics.dir/metrics/stats.cc.o.d"
  "CMakeFiles/odyssey_metrics.dir/metrics/table.cc.o"
  "CMakeFiles/odyssey_metrics.dir/metrics/table.cc.o.d"
  "CMakeFiles/odyssey_metrics.dir/metrics/trial.cc.o"
  "CMakeFiles/odyssey_metrics.dir/metrics/trial.cc.o.d"
  "libodyssey_metrics.a"
  "libodyssey_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for odyssey_apps.
# This may be replaced when dependencies are built.

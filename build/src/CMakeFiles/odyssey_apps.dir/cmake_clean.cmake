file(REMOVE_RECURSE
  "CMakeFiles/odyssey_apps.dir/apps/bitstream_app.cc.o"
  "CMakeFiles/odyssey_apps.dir/apps/bitstream_app.cc.o.d"
  "CMakeFiles/odyssey_apps.dir/apps/filter_app.cc.o"
  "CMakeFiles/odyssey_apps.dir/apps/filter_app.cc.o.d"
  "CMakeFiles/odyssey_apps.dir/apps/prefetch_agent.cc.o"
  "CMakeFiles/odyssey_apps.dir/apps/prefetch_agent.cc.o.d"
  "CMakeFiles/odyssey_apps.dir/apps/speech_frontend.cc.o"
  "CMakeFiles/odyssey_apps.dir/apps/speech_frontend.cc.o.d"
  "CMakeFiles/odyssey_apps.dir/apps/video_player.cc.o"
  "CMakeFiles/odyssey_apps.dir/apps/video_player.cc.o.d"
  "CMakeFiles/odyssey_apps.dir/apps/web_browser.cc.o"
  "CMakeFiles/odyssey_apps.dir/apps/web_browser.cc.o.d"
  "libodyssey_apps.a"
  "libodyssey_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bitstream_app.cc" "src/CMakeFiles/odyssey_apps.dir/apps/bitstream_app.cc.o" "gcc" "src/CMakeFiles/odyssey_apps.dir/apps/bitstream_app.cc.o.d"
  "/root/repo/src/apps/filter_app.cc" "src/CMakeFiles/odyssey_apps.dir/apps/filter_app.cc.o" "gcc" "src/CMakeFiles/odyssey_apps.dir/apps/filter_app.cc.o.d"
  "/root/repo/src/apps/prefetch_agent.cc" "src/CMakeFiles/odyssey_apps.dir/apps/prefetch_agent.cc.o" "gcc" "src/CMakeFiles/odyssey_apps.dir/apps/prefetch_agent.cc.o.d"
  "/root/repo/src/apps/speech_frontend.cc" "src/CMakeFiles/odyssey_apps.dir/apps/speech_frontend.cc.o" "gcc" "src/CMakeFiles/odyssey_apps.dir/apps/speech_frontend.cc.o.d"
  "/root/repo/src/apps/video_player.cc" "src/CMakeFiles/odyssey_apps.dir/apps/video_player.cc.o" "gcc" "src/CMakeFiles/odyssey_apps.dir/apps/video_player.cc.o.d"
  "/root/repo/src/apps/web_browser.cc" "src/CMakeFiles/odyssey_apps.dir/apps/web_browser.cc.o" "gcc" "src/CMakeFiles/odyssey_apps.dir/apps/web_browser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odyssey_wardens.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_tracemod.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

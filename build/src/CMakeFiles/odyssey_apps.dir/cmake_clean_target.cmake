file(REMOVE_RECURSE
  "libodyssey_apps.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/battery_model.cc" "src/CMakeFiles/odyssey_core.dir/core/battery_model.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/battery_model.cc.o.d"
  "/root/repo/src/core/cache_manager.cc" "src/CMakeFiles/odyssey_core.dir/core/cache_manager.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/cache_manager.cc.o.d"
  "/root/repo/src/core/money_meter.cc" "src/CMakeFiles/odyssey_core.dir/core/money_meter.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/money_meter.cc.o.d"
  "/root/repo/src/core/object_namespace.cc" "src/CMakeFiles/odyssey_core.dir/core/object_namespace.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/object_namespace.cc.o.d"
  "/root/repo/src/core/odyssey_client.cc" "src/CMakeFiles/odyssey_core.dir/core/odyssey_client.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/odyssey_client.cc.o.d"
  "/root/repo/src/core/request_table.cc" "src/CMakeFiles/odyssey_core.dir/core/request_table.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/request_table.cc.o.d"
  "/root/repo/src/core/resource.cc" "src/CMakeFiles/odyssey_core.dir/core/resource.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/resource.cc.o.d"
  "/root/repo/src/core/ship_planner.cc" "src/CMakeFiles/odyssey_core.dir/core/ship_planner.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/ship_planner.cc.o.d"
  "/root/repo/src/core/status.cc" "src/CMakeFiles/odyssey_core.dir/core/status.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/status.cc.o.d"
  "/root/repo/src/core/upcall.cc" "src/CMakeFiles/odyssey_core.dir/core/upcall.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/upcall.cc.o.d"
  "/root/repo/src/core/viceroy.cc" "src/CMakeFiles/odyssey_core.dir/core/viceroy.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/viceroy.cc.o.d"
  "/root/repo/src/core/warden.cc" "src/CMakeFiles/odyssey_core.dir/core/warden.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/core/warden.cc.o.d"
  "/root/repo/src/strategies/blind_optimism.cc" "src/CMakeFiles/odyssey_core.dir/strategies/blind_optimism.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/strategies/blind_optimism.cc.o.d"
  "/root/repo/src/strategies/centralized.cc" "src/CMakeFiles/odyssey_core.dir/strategies/centralized.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/strategies/centralized.cc.o.d"
  "/root/repo/src/strategies/laissez_faire.cc" "src/CMakeFiles/odyssey_core.dir/strategies/laissez_faire.cc.o" "gcc" "src/CMakeFiles/odyssey_core.dir/strategies/laissez_faire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odyssey_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odyssey_tracemod.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/odyssey_core.dir/core/battery_model.cc.o"
  "CMakeFiles/odyssey_core.dir/core/battery_model.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/cache_manager.cc.o"
  "CMakeFiles/odyssey_core.dir/core/cache_manager.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/money_meter.cc.o"
  "CMakeFiles/odyssey_core.dir/core/money_meter.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/object_namespace.cc.o"
  "CMakeFiles/odyssey_core.dir/core/object_namespace.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/odyssey_client.cc.o"
  "CMakeFiles/odyssey_core.dir/core/odyssey_client.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/request_table.cc.o"
  "CMakeFiles/odyssey_core.dir/core/request_table.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/resource.cc.o"
  "CMakeFiles/odyssey_core.dir/core/resource.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/ship_planner.cc.o"
  "CMakeFiles/odyssey_core.dir/core/ship_planner.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/status.cc.o"
  "CMakeFiles/odyssey_core.dir/core/status.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/upcall.cc.o"
  "CMakeFiles/odyssey_core.dir/core/upcall.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/viceroy.cc.o"
  "CMakeFiles/odyssey_core.dir/core/viceroy.cc.o.d"
  "CMakeFiles/odyssey_core.dir/core/warden.cc.o"
  "CMakeFiles/odyssey_core.dir/core/warden.cc.o.d"
  "CMakeFiles/odyssey_core.dir/strategies/blind_optimism.cc.o"
  "CMakeFiles/odyssey_core.dir/strategies/blind_optimism.cc.o.d"
  "CMakeFiles/odyssey_core.dir/strategies/centralized.cc.o"
  "CMakeFiles/odyssey_core.dir/strategies/centralized.cc.o.d"
  "CMakeFiles/odyssey_core.dir/strategies/laissez_faire.cc.o"
  "CMakeFiles/odyssey_core.dir/strategies/laissez_faire.cc.o.d"
  "libodyssey_core.a"
  "libodyssey_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libodyssey_core.a"
)

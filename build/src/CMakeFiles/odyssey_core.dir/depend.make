# Empty dependencies file for odyssey_core.
# This may be replaced when dependencies are built.

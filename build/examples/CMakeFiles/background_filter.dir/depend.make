# Empty dependencies file for background_filter.
# This may be replaced when dependencies are built.

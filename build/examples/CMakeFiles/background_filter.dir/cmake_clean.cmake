file(REMOVE_RECURSE
  "CMakeFiles/background_filter.dir/background_filter.cpp.o"
  "CMakeFiles/background_filter.dir/background_filter.cpp.o.d"
  "background_filter"
  "background_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

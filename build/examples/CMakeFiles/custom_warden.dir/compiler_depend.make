# Empty compiler generated dependencies file for custom_warden.
# This may be replaced when dependencies are built.

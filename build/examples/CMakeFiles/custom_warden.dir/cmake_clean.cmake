file(REMOVE_RECURSE
  "CMakeFiles/custom_warden.dir/custom_warden.cpp.o"
  "CMakeFiles/custom_warden.dir/custom_warden.cpp.o.d"
  "custom_warden"
  "custom_warden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_warden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

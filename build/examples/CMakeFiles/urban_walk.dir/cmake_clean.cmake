file(REMOVE_RECURSE
  "CMakeFiles/urban_walk.dir/urban_walk.cpp.o"
  "CMakeFiles/urban_walk.dir/urban_walk.cpp.o.d"
  "urban_walk"
  "urban_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for urban_walk.
# This may be replaced when dependencies are built.

# Empty dependencies file for disconnection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/disconnection.dir/disconnection.cpp.o"
  "CMakeFiles/disconnection.dir/disconnection.cpp.o.d"
  "disconnection"
  "disconnection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// ody_fuzz: the deterministic simulation fuzzer's fleet driver.
//
// Usage:
//   ody_fuzz --runs=N [--jobs=M] [--seed=U64] [--max-apps=N] [--mobility]
//            [--fleet] [--strategy=NAME|random] [--selftest-mutation]
//            [--selftest-tiebreak] [--no-shrink] [--repro-out=PATH]
//            [--trace-out=PATH] [--verbose]
//
// Synthesizes N scenarios from a single campaign seed (trial seeds derived
// with the same O(1) stream jump the bench campaigns use), executes each
// against a fresh Odyssey stack under the invariant oracles, and reports
// every violation.  --max-apps raises the scenario generator's population
// bound (log-uniform above the default 8; see ScenarioOptions), and
// --mobility arms the scenario generator's mobility dimension (about half
// the runs take a motion-generated waveform from src/mobility), and --fleet
// arms the fleet dimension (about half the runs become 2-8 client nodes
// sharing 1-2 server groups through the estimate-aggregation protocol, run
// on the multi-node rig with the fleet oracles armed).  --strategy=random
// arms the strategy dimension (every scenario draws its bandwidth strategy
// from the builtin StrategyRegistry); --strategy=NAME pins every scenario
// to one registered strategy instead.  Output is
// a pure function of (--runs, --seed, --max-apps, --mobility, --fleet,
// --strategy, --selftest-mutation,
// --selftest-tiebreak): --jobs only changes wall-clock time, never a byte
// of stdout or the artifacts — results land in per-run slots and are
// printed in plan order after the pool drains.
//
// On failure the first failing scenario is shrunk to a minimal reproducer
// (greedy delta debugging over the scenario description); the reproducer is
// written as a self-contained C++ test snippet to --repro-out and its
// canonicalized trace to --trace-out, and the exit code is 1.
//
// --selftest-mutation requires a build with -DODYSSEY_FUZZ_SELFTEST=ON; it
// makes the runner observe the second upcall of every app twice, so CI can
// prove the upcall-duplicate oracle and the shrinker work end to end.
// --selftest-tiebreak (same build requirement) instead removes the event
// queue's deterministic FIFO tie-break, which the same-time-order oracle
// must catch.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/check/oracles.h"
#include "src/check/shrink.h"
#include "src/fleet/fleet_fuzz.h"
#include "src/harness/campaign.h"
#include "src/harness/worker_pool.h"
#include "src/strategies/strategy_registry.h"

namespace {

using odyssey::DeriveTrialSeed;
using odyssey::FormatViolations;
using odyssey::FuzzRunOptions;
using odyssey::FuzzRunResult;
using odyssey::FuzzScenario;
using odyssey::GenerateScenario;
using odyssey::RunFuzzScenario;
using odyssey::ShrinkFailingScenario;
using odyssey::ShrinkResult;

struct Options {
  int runs = 50;
  int jobs = odyssey::DefaultJobCount();
  uint64_t seed = 1;
  // ScenarioOptions::max_apps: at the default 8 scenarios are byte-identical
  // to the historical generator; larger values sweep large-N populations.
  int max_apps = 8;
  // ScenarioOptions::mobility: arms the motion-generated waveform dimension.
  bool mobility = false;
  // ScenarioOptions::fleet: arms the multi-node fleet dimension.
  bool fleet = false;
  // Strategy dimension: "random" arms ScenarioOptions::strategies; any
  // other non-empty value pins every scenario to that registry name.
  std::string strategy;
  bool selftest_mutation = false;
  bool selftest_tiebreak = false;
  bool shrink = true;
  bool verbose = false;
  std::string repro_out = "fuzz_repro.cc";
  std::string trace_out = "fuzz_trace.txt";
};

bool FlagValue(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ParseInt(const std::string& text, int* out) {
  uint64_t value = 0;
  if (!ParseU64(text, &value) || value > 1u << 20) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ody_fuzz --runs=N [--jobs=M] [--seed=U64] [--max-apps=N] [--mobility]\n"
               "                [--fleet] [--strategy=NAME|random] [--selftest-mutation]\n"
               "                [--selftest-tiebreak] [--no-shrink] [--repro-out=PATH]\n"
               "                [--trace-out=PATH] [--verbose]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (FlagValue(arg, "runs", &value)) {
      if (!ParseInt(value, &options->runs) || options->runs <= 0) {
        return false;
      }
    } else if (FlagValue(arg, "jobs", &value)) {
      if (!ParseInt(value, &options->jobs) || options->jobs <= 0) {
        return false;
      }
    } else if (FlagValue(arg, "seed", &value)) {
      if (!ParseU64(value, &options->seed)) {
        return false;
      }
    } else if (FlagValue(arg, "max-apps", &value)) {
      if (!ParseInt(value, &options->max_apps) || options->max_apps <= 0) {
        return false;
      }
    } else if (FlagValue(arg, "strategy", &value)) {
      options->strategy = value;
    } else if (FlagValue(arg, "repro-out", &value)) {
      options->repro_out = value;
    } else if (FlagValue(arg, "trace-out", &value)) {
      options->trace_out = value;
    } else if (arg == "--mobility") {
      options->mobility = true;
    } else if (arg == "--fleet") {
      options->fleet = true;
    } else if (arg == "--selftest-mutation") {
      options->selftest_mutation = true;
    } else if (arg == "--selftest-tiebreak") {
      options->selftest_tiebreak = true;
    } else if (arg == "--no-shrink") {
      options->shrink = false;
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    return Usage();
  }
  if ((options.selftest_mutation || options.selftest_tiebreak) &&
      !odyssey::kFuzzSelftestCompiled) {
    std::fprintf(stderr,
                 "ody_fuzz: --selftest-mutation/--selftest-tiebreak need a "
                 "-DODYSSEY_FUZZ_SELFTEST=ON build\n");
    return 2;
  }

  FuzzRunOptions run_options;
  run_options.selftest_mutation = options.selftest_mutation;
  run_options.selftest_tiebreak = options.selftest_tiebreak;
  odyssey::ScenarioOptions scenario_options;
  scenario_options.max_apps = options.max_apps;
  scenario_options.mobility = options.mobility;
  scenario_options.fleet = options.fleet;
  const bool random_strategy = options.strategy == "random";
  scenario_options.strategies = random_strategy;
  const std::string pinned_strategy = random_strategy ? std::string() : options.strategy;
  if (!pinned_strategy.empty() &&
      odyssey::StrategyRegistry::Builtin().Find(pinned_strategy) == nullptr) {
    std::fprintf(stderr, "ody_fuzz: unknown --strategy \"%s\" (registered:", pinned_strategy.c_str());
    for (const std::string& name : odyssey::StrategyRegistry::Builtin().Names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  // A fleet-dimension scenario runs on the multi-node rig; everything else
  // takes the classic single-node runner.
  const auto run_scenario = [&run_options](const FuzzScenario& scenario) {
    return scenario.fleet_nodes >= 2 ? odyssey::RunFleetFuzzScenario(scenario, run_options)
                                     : RunFuzzScenario(scenario, run_options);
  };

  // Fleet execution: every run writes only its own slot, so the report
  // below is independent of worker count and completion order.
  const auto count = static_cast<size_t>(options.runs);
  std::vector<FuzzRunResult> results(count);
  std::vector<uint64_t> seeds(count);
  for (size_t i = 0; i < count; ++i) {
    seeds[i] = DeriveTrialSeed(options.seed, static_cast<uint64_t>(i));
  }
  // A pinned strategy overrides the generated scenario after synthesis, so
  // the rest of the description stays byte-identical to the unpinned run.
  const auto generate = [&scenario_options, &pinned_strategy](uint64_t seed) {
    FuzzScenario scenario = GenerateScenario(seed, scenario_options);
    if (!pinned_strategy.empty()) {
      scenario.strategy = pinned_strategy;
    }
    return scenario;
  };
  odyssey::RunIndexedTasks(options.jobs, count,
                           [&](size_t i) { results[i] = run_scenario(generate(seeds[i])); });

  std::printf("ody_fuzz: %d runs, seed %llu, max apps %d%s%s%s%s%s%s\n", options.runs,
              static_cast<unsigned long long>(options.seed), options.max_apps,
              options.mobility ? ", mobility dimension on" : "",
              options.fleet ? ", fleet dimension on" : "",
              random_strategy ? ", strategy dimension on" : "",
              pinned_strategy.empty() ? "" : (", strategy " + pinned_strategy).c_str(),
              options.selftest_mutation ? ", selftest mutation armed" : "",
              options.selftest_tiebreak ? ", selftest tiebreak armed" : "");

  uint64_t total_violations = 0;
  uint64_t total_upcalls = 0;
  uint64_t total_requests = 0;
  uint64_t total_tsops = 0;
  uint64_t total_tie_pairs = 0;
  size_t failing_runs = 0;
  size_t first_failure = count;
  for (size_t i = 0; i < count; ++i) {
    const FuzzRunResult& result = results[i];
    total_violations += result.violation_count;
    total_upcalls += result.upcalls_delivered;
    total_requests += result.requests_granted;
    total_tsops += result.tsops_issued;
    total_tie_pairs += result.tie_pairs_audited;
    if (!result.ok()) {
      ++failing_runs;
      if (first_failure == count) {
        first_failure = i;
      }
      std::printf("run %zu seed %llu: %llu violations\n%s", i,
                  static_cast<unsigned long long>(seeds[i]),
                  static_cast<unsigned long long>(result.violation_count),
                  FormatViolations(result.violations).c_str());
    } else if (options.verbose) {
      std::printf("run %zu seed %llu: ok (%llu upcalls, %llu requests, %llu tsops)\n", i,
                  static_cast<unsigned long long>(seeds[i]),
                  static_cast<unsigned long long>(result.upcalls_delivered),
                  static_cast<unsigned long long>(result.requests_granted),
                  static_cast<unsigned long long>(result.tsops_issued));
    }
  }
  std::printf(
      "totals: %llu violations in %zu/%zu runs (%llu upcalls, %llu requests, %llu tsops, "
      "%llu tie pairs audited)\n",
      static_cast<unsigned long long>(total_violations), failing_runs, count,
      static_cast<unsigned long long>(total_upcalls),
      static_cast<unsigned long long>(total_requests),
      static_cast<unsigned long long>(total_tsops),
      static_cast<unsigned long long>(total_tie_pairs));

  if (failing_runs == 0) {
    return 0;
  }

  if (options.shrink) {
    const FuzzScenario failing = generate(seeds[first_failure]);
    const std::string oracle = results[first_failure].violations.empty()
                                   ? std::string()
                                   : results[first_failure].violations.front().oracle;
    std::printf("shrinking run %zu (oracle \"%s\", %zu elements)...\n", first_failure,
                oracle.c_str(), failing.ElementCount());
    const bool fleet_repro = failing.fleet_nodes >= 2;
    const ShrinkResult shrunk =
        fleet_repro ? odyssey::ShrinkWithPredicate(
                          failing,
                          [&run_options, &oracle](const FuzzScenario& candidate) {
                            return odyssey::HasViolationOf(
                                odyssey::RunFleetFuzzScenario(candidate, run_options), oracle);
                          })
                    : ShrinkFailingScenario(failing, oracle, run_options);
    std::printf("shrink: minimized to %zu elements (from %zu) in %d rounds, %d attempts\n",
                shrunk.final_elements, shrunk.initial_elements, shrunk.rounds,
                shrunk.attempts);
    std::printf("%s", shrunk.minimized.Describe().c_str());
    if (fleet_repro) {
      // The repro-snippet and canonical-trace emitters reconstruct the
      // single-node rig; a fleet reproducer is the scenario description
      // itself (replayable via GenerateScenario is not possible after
      // shrinking, so the description is the artifact).
      if (WriteFile(options.repro_out, shrunk.minimized.Describe())) {
        std::printf("fleet repro description: %s\n", options.repro_out.c_str());
      } else {
        std::fprintf(stderr, "ody_fuzz: cannot write %s\n", options.repro_out.c_str());
      }
      std::printf("canonical trace: single-node only, skipped for fleet scenario\n");
    } else {
      if (WriteFile(options.repro_out, odyssey::EmitReproSnippet(shrunk.minimized, oracle))) {
        std::printf("repro snippet: %s\n", options.repro_out.c_str());
      } else {
        std::fprintf(stderr, "ody_fuzz: cannot write %s\n", options.repro_out.c_str());
      }
      if (WriteFile(options.trace_out,
                    odyssey::CanonicalTraceForScenario(shrunk.minimized, run_options))) {
        std::printf("canonical trace: %s\n", options.trace_out.c_str());
      } else {
        std::fprintf(stderr, "ody_fuzz: cannot write %s\n", options.trace_out.c_str());
      }
    }
  }
  return 1;
}

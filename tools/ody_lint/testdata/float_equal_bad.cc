// Fixture: exact floating-point comparisons on resource levels.

namespace odyssey {

bool Bad(double bandwidth, double fidelity) {
  if (bandwidth == 0.0) {
    return true;
  }
  return 1.0 != fidelity;
}

}  // namespace odyssey

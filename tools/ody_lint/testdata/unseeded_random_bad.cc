// Fixture: entropy sources that bypass the seeded Rng.
#include <cstdlib>
#include <random>

namespace odyssey {

int Bad() {
  std::mt19937 engine;
  std::random_device device;
  return rand() + static_cast<int>(engine()) + static_cast<int>(device());
}

}  // namespace odyssey

// Fixture: fleet-pod-message violations.  A message struct smuggling
// non-POD payloads and missing its trivially-copyable assert, plus a fleet
// source reading the wall clock and seeding a stream from a literal.
#include <chrono>
#include <string>

namespace odyssey {

struct BadFleetMessage {
  std::string detail;          // non-POD payload
  const char* note = nullptr;  // raw pointer payload
  double supply_bps = 0.0;
};

inline double Sample() {
  const auto start = std::chrono::steady_clock::now();
  SplitMix64 mix(12345);
  (void)start;
  return static_cast<double>(mix.Next());
}

}  // namespace odyssey

// Fixture: the same real-time calls, each suppressed inline.
#include <chrono>
#include <thread>

namespace odyssey {

void Suppressed() {
  auto start = std::chrono::steady_clock::now();  // ody-lint: allow(test-no-wallclock)
  // ody-lint: allow(test-no-wallclock)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (void)start;
}

}  // namespace odyssey

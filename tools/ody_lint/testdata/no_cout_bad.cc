// Fixture: stdout noise in library code.
#include <cstdio>
#include <iostream>

namespace odyssey {

void Bad() {
  std::cout << "supply changed\n";
  printf("supply changed\n");
}

}  // namespace odyssey

// escape-capture positive fixture: both historical bug shapes.
#include <functional>
#include <string>

namespace odyssey {

struct Simulation {
  void Schedule(long delay, std::function<void()> cb);
  void Post(long delay, std::function<void()> cb);
};

using UpcallHandler = std::function<void(int, int, double)>;

struct ResourceDescriptor {
  double lower = 0.0;
  double upper = 0.0;
  UpcallHandler handler;
};

struct Dispatcher {
  void set_delivery_observer(std::function<void(int)> observer);
};

// Shape 1 (the bench dangling-stack-capture bug): a stack local captured by
// reference into a scheduled event that fires after the frame returns.
void ScheduleOverDeadFrame(Simulation* sim) {
  int completed = 0;
  sim->Schedule(1000, [&completed] { ++completed; });  // line 28: flagged
  sim->Post(1000, [&] { ++completed; });               // line 29: flagged
}

// Shape 2 (the client teardown use-after-free): an observer wired to a
// shorter-lived object through a by-reference capture.
void ObserveWithStackState(Dispatcher* dispatcher) {
  std::string log;
  dispatcher->set_delivery_observer([&log](int) { log += 'x'; });  // line 36
}

// Member-assignment form of shape 2: a handler stored in a descriptor that
// outlives the registering frame.
ResourceDescriptor DescribeWithStackHandler() {
  double last_level = 0.0;
  ResourceDescriptor descriptor;
  descriptor.handler = [&](int, int, double level) {  // line 44: flagged
    last_level = level;
  };
  return descriptor;
}

// Value and this captures at the same sinks are clean.
struct Component {
  Simulation* sim = nullptr;
  int ticks = 0;
  void Arm() {
    sim->Schedule(1000, [this] { ++ticks; });     // clean: object-managed
    int snapshot = ticks;
    sim->Post(1000, [snapshot] { (void)snapshot; });  // clean: by value
  }
};

}  // namespace odyssey

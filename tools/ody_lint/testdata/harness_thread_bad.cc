// Fixture: raw threads outside the worker pool, plus a detach.
#include <thread>

namespace odyssey {

void SpawnWorkers() {
  std::thread worker([] {});
  worker.detach();
  std::jthread other([] {});
}

}  // namespace odyssey

// Fixture: the same wall-clock calls, each suppressed inline.
#include <ctime>

namespace odyssey {

long Suppressed() {
  long t = time(nullptr);  // ody-lint: allow(wall-clock)
  // ody-lint: allow(wall-clock)
  t += clock();
  return t;
}

}  // namespace odyssey

// escape-capture cross-file fixture, pass-one side: sinks whose signatures
// only this header knows.  The companion escape_capture_cross.cc calls them
// without any local std::function evidence.
#ifndef SRC_CORE_ESCAPE_CAPTURE_SINKS_H_
#define SRC_CORE_ESCAPE_CAPTURE_SINKS_H_

#include <functional>
#include <utility>
#include <vector>

namespace odyssey {

using ChangeCallback = std::function<void(double)>;

// Sink by storage: the definition moves the parameter into a member.
class LevelWatcher {
 public:
  void WatchLevel(ChangeCallback cb) { callbacks_.push_back(std::move(cb)); }

 private:
  std::vector<ChangeCallback> callbacks_;
};

// Sink by constructor storage (ctor-init list).
class Debouncer {
 public:
  explicit Debouncer(ChangeCallback cb) : cb_(std::move(cb)) {}

 private:
  ChangeCallback cb_;
};

// NOT a sink: runs the callback inline and never keeps it.
inline void ApplyNow(const ChangeCallback& cb, double level) { cb(level); }

}  // namespace odyssey

#endif  // SRC_CORE_ESCAPE_CAPTURE_SINKS_H_

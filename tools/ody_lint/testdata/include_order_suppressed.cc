// Fixture: the same violations, each annotated.
#include "include_order_bad.h"  // ody-lint: allow(include-order)

#include "src/core/status.h"
// ody-lint: allow(include-order)
#include "src/core/resource.h"

namespace odyssey {}

// Fixture: non-root-relative include plus an unsorted block.
#include "include_order_bad.h"

#include "src/core/status.h"
#include "src/core/resource.h"

namespace odyssey {}

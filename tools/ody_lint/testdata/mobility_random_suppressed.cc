// Fixture: line suppressions silence the mobility-specific patterns.
#include "src/sim/random.h"

namespace odyssey {

double Suppressed() {
  Rng fixed(42);  // ody-lint: allow(unseeded-random)
  // ody-lint: allow(unseeded-random)
  SplitMix64 mix(7u);
  return fixed.NextDouble() + static_cast<double>(mix.Next());
}

}  // namespace odyssey

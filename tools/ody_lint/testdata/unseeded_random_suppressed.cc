// Fixture: a file-level suppression covers every hit in the file.
// ody-lint: allow-file(unseeded-random)
#include <cstdlib>

namespace odyssey {

int Suppressed() { return rand(); }
int SuppressedAgain() { return rand(); }

}  // namespace odyssey

// A strategy that breaks isolation every way the rule knows.
#include "src/estimator/sliding_max.h"
#include "src/estimator/usage_meter.h"

namespace odyssey {

void BadStrategyUpdate(Endpoint* endpoint) {
  const auto wall = std::chrono::steady_clock::now();
  endpoint->log().RecordThroughput(0, 1024.0, 50);
  endpoint->log().RecordRoundTrip(0, 20);
}

}  // namespace odyssey

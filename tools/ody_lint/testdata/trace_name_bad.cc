// Fixture: dynamically built ODY_TRACE_* event names (forbidden — the
// recorder stores the pointer, so these would dangle and allocate).
#include <string>

void Bad(odyssey::TraceRecorder* rec, const std::string& which, long now) {
  const std::string name = "event_" + which;
  ODY_TRACE_INSTANT(rec, kApp, name.c_str(), now, 0);
  ODY_TRACE_COUNTER(rec, kApp, which.c_str(), now, 0, 1.0);
  ODY_TRACE_BEGIN1(rec, kRpc,
                   (which + "_span").c_str(),
                   now, 1, "bytes", 2.0);
  // A literal name is fine, including over a line break:
  ODY_TRACE_END1(rec, kRpc, "rpc_call", now, 1, "rtt_us", 3.0);
  ODY_TRACE_INSTANT1(rec, kNet,
                     "link_transition", now, 0, "bw", 4.0);
}

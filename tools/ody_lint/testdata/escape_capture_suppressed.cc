// escape-capture suppressed fixture: every site carries an annotation.
#include <functional>

namespace odyssey {

struct Simulation {
  void Schedule(long delay, std::function<void()> cb);
};

// The run loop drains the queue before this frame returns, so the captured
// counter outlives every invocation.
void ScheduleAndDrain(Simulation* sim) {
  int completed = 0;
  sim->Schedule(1000, [&completed] { ++completed; });  // ody_lint: owned-capture
  // ody_lint: owned-capture
  sim->Schedule(2000, [&completed] { ++completed; });
  // The legacy spelling works too.
  sim->Schedule(3000, [&completed] { ++completed; });  // ody-lint: owned-capture
  sim->Schedule(4000, [&completed] { ++completed; });  // ody-lint: allow(escape-capture)
}

}  // namespace odyssey

// Fixture: wall-clock time sources inside a simulated subsystem.
#include <ctime>

namespace odyssey {

long Bad() {
  long t = time(nullptr);
  t += clock();
  return t;
}

}  // namespace odyssey

// Fixture: cross-trial state the campaign engine must not hold.
namespace odyssey {

static int g_trial_counter = 0;

class Cache {
 public:
  int Lookup() const {
    static int hits = 0;
    return ++hits;
  }

 private:
  mutable int misses_ = 0;
};

// Immutable statics are fine: these two lines must stay clean.
static const int kLimit = 8;
static constexpr double kTolerance = 0.05;

int Bump() { return ++g_trial_counter; }

}  // namespace odyssey

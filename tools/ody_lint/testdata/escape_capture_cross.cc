// escape-capture cross-file fixture, pass-two side: the sink signatures
// live in escape_capture_sinks.h; nothing in this file alone says the
// callables escape.
#include "src/core/escape_capture_sinks.h"

namespace odyssey {

void Wire(LevelWatcher* watcher) {
  double last = 0.0;
  watcher->WatchLevel([&last](double level) { last = level; });  // line 10
}

Debouncer MakeDebouncer() {
  double acc = 0.0;
  Debouncer bouncer([&acc](double level) { acc += level; });  // line 15
  return bouncer;
}

void Inline(const LevelWatcher&) {
  double last = 0.0;
  ApplyNow([&last](double level) { last = level; }, 1.0);  // clean: not a sink
}

}  // namespace odyssey

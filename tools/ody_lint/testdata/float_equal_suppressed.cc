// Fixture: a deliberate sentinel comparison, annotated.

namespace odyssey {

bool Suppressed(double level) {
  return level == -1.0;  // ody-lint: allow(float-equal)
}

}  // namespace odyssey

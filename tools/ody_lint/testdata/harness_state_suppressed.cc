// Fixture: global state silenced by a file-wide annotation.
// ody-lint: allow-file(harness-no-global-state)
namespace odyssey {

static int g_trial_counter = 0;

int Bump() { return ++g_trial_counter; }

}  // namespace odyssey

// Fixture: the same raw threads, silenced by annotations.
#include <thread>

namespace odyssey {

void SpawnWorkers() {
  std::thread worker([] {});  // ody-lint: allow(harness-no-raw-thread)
  // ody-lint: allow(harness-no-raw-thread)
  worker.detach();
  std::jthread other([] {});  // ody-lint: allow(harness-no-raw-thread)
}

}  // namespace odyssey

// Fixture: the same fleet-pod-message shapes silenced by a file-level
// annotation, alongside the clean POD form the rule wants.
// ody-lint: allow-file(fleet-pod-message)
#include <chrono>
#include <string>
#include <type_traits>

namespace odyssey {

struct OkFleetMessage {
  unsigned origin = 0;
  double supply_bps = 0.0;
};
static_assert(std::is_trivially_copyable_v<OkFleetMessage>);

struct LoggedFleetMessage {
  std::string detail;
  const char* note = nullptr;
};

inline double Sample() {
  const auto start = std::chrono::steady_clock::now();
  SplitMix64 mix(12345);
  (void)start;
  return static_cast<double>(mix.Next());
}

}  // namespace odyssey

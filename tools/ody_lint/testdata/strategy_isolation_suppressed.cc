// The same shapes, each carrying its justification annotation.
#include "src/estimator/usage_meter.h"  // ody-lint: allow(strategy-isolation)

namespace odyssey {

void JustifiedUpdate(Endpoint* endpoint) {
  // ody-lint: allow(strategy-isolation)
  const auto wall = std::chrono::steady_clock::now();
  endpoint->log().RecordThroughput(0, 1024.0, 50);  // ody-lint: allow(strategy-isolation)
}

}  // namespace odyssey

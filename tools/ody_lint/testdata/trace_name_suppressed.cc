// Fixture: trace-static-name violations silenced by annotations.
#include <string>

void Suppressed(odyssey::TraceRecorder* rec, const std::string& which, long now) {
  ODY_TRACE_INSTANT(rec, kApp, which.c_str(), now, 0);  // ody-lint: allow(trace-static-name)
  // ody-lint: allow(trace-static-name)
  ODY_TRACE_COUNTER(rec, kApp, which.c_str(), now, 0, 1.0);
}

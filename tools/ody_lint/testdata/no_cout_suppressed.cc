// Fixture: an intentional report path, annotated.
#include <iostream>

namespace odyssey {

void Suppressed() {
  std::cout << "report\n";  // ody-lint: allow(no-cout)
}

}  // namespace odyssey

// Fixture: real-time waits and wall-clock reads inside a test.
#include <chrono>
#include <thread>

namespace odyssey {

void Bad() {
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto wall = std::chrono::system_clock::now();
  (void)start;
  (void)wall;
}

}  // namespace odyssey

// Fixture: guard does not match the project-relative path.

#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_

namespace odyssey {}

#endif  // WRONG_GUARD_H_

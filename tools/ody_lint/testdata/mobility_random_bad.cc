// Fixture: entropy misuse specific to the mobility models — a <random>
// distribution (implementation-defined sampling) and literal-seeded
// generators (the track would ignore the trial seed).
#include <random>

#include "src/sim/random.h"

namespace odyssey {

double Bad(Rng& rng) {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  Rng fixed(42);
  SplitMix64 mix(0x1234u);
  return uniform(rng) + fixed.NextDouble() + static_cast<double>(mix.Next());
}

double Good(uint64_t seed) {
  // Deriving from the explicit seed is the blessed shape.
  Rng rng(SplitMix64(seed).Next());
  return rng.NextDouble();
}

}  // namespace odyssey

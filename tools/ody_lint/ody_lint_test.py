#!/usr/bin/env python3
"""Self-tests for ody_lint: each rule has a positive fixture (violations
found) and a suppressed fixture (annotations silence them).

Fixtures live in testdata/ and are copied into a scratch tree at the paths
where their rules apply (library rules only fire under src/), then linted
through the real CLI entry point.
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ody_lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")


class OdyLintTest(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="ody_lint_test_")
        self.addCleanup(shutil.rmtree, self.root)

    def place(self, fixture, relpath):
        dest = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copyfile(os.path.join(TESTDATA, fixture), dest)
        return relpath

    def lint(self, relpath):
        return ody_lint.lint_file(self.root, relpath)

    def rules_found(self, relpath):
        return sorted({v.rule for v in self.lint(relpath)})

    # --- wall-clock ---

    def test_wall_clock_flagged_in_simulated_dirs(self):
        rel = self.place("wall_clock_bad.cc", "src/sim/wall_clock_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "wall-clock"]
        self.assertEqual(len(violations), 2)
        self.assertEqual([v.line for v in violations], [7, 8])

    def test_wall_clock_allowed_outside_simulated_dirs(self):
        rel = self.place("wall_clock_bad.cc", "src/metrics/wall_clock_bad.cc")
        self.assertNotIn("wall-clock", self.rules_found(rel))

    def test_wall_clock_suppressed(self):
        rel = self.place("wall_clock_suppressed.cc", "src/sim/wall_clock_suppressed.cc")
        self.assertNotIn("wall-clock", self.rules_found(rel))

    # --- unseeded-random ---

    def test_unseeded_random_flagged(self):
        rel = self.place("unseeded_random_bad.cc", "src/core/unseeded_random_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "unseeded-random"]
        self.assertEqual(len(violations), 3)

    def test_unseeded_random_file_suppression(self):
        rel = self.place("unseeded_random_suppressed.cc",
                         "src/core/unseeded_random_suppressed.cc")
        self.assertNotIn("unseeded-random", self.rules_found(rel))

    def test_random_home_is_exempt(self):
        rel = self.place("unseeded_random_bad.cc", "src/sim/random.h")
        self.assertNotIn("unseeded-random", self.rules_found(rel))

    def test_mobility_random_strictness_flagged(self):
        rel = self.place("mobility_random_bad.cc", "src/mobility/mobility_random_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "unseeded-random"]
        # The distribution, the literal-seeded Rng, and the literal-seeded
        # SplitMix64 each fire; the seed-derived Good() shape stays clean.
        self.assertEqual([v.line for v in violations], [11, 12, 13])

    def test_mobility_random_strictness_scoped_to_mobility(self):
        # The same file placed elsewhere in src/ only obeys the tree-wide
        # rule, which none of these patterns trip.
        rel = self.place("mobility_random_bad.cc", "src/core/mobility_random_bad.cc")
        self.assertNotIn("unseeded-random", self.rules_found(rel))

    def test_mobility_random_strictness_suppressed(self):
        rel = self.place("mobility_random_suppressed.cc",
                        "src/mobility/mobility_random_suppressed.cc")
        self.assertNotIn("unseeded-random", self.rules_found(rel))

    # --- float-equal ---

    def test_float_equal_flagged(self):
        rel = self.place("float_equal_bad.cc", "src/estimator/float_equal_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "float-equal"]
        self.assertEqual([v.line for v in violations], [6, 9])

    def test_float_equal_suppressed(self):
        rel = self.place("float_equal_suppressed.cc",
                         "src/estimator/float_equal_suppressed.cc")
        self.assertNotIn("float-equal", self.rules_found(rel))

    def test_float_equal_not_applied_to_tests(self):
        rel = self.place("float_equal_bad.cc", "tests/float_equal_bad.cc")
        self.assertNotIn("float-equal", self.rules_found(rel))

    # --- no-cout ---

    def test_no_cout_flagged_in_library(self):
        rel = self.place("no_cout_bad.cc", "src/core/no_cout_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "no-cout"]
        self.assertEqual(len(violations), 2)

    def test_no_cout_allowed_in_bench(self):
        rel = self.place("no_cout_bad.cc", "bench/no_cout_bad.cc")
        self.assertNotIn("no-cout", self.rules_found(rel))

    def test_no_cout_suppressed(self):
        rel = self.place("no_cout_suppressed.cc", "src/core/no_cout_suppressed.cc")
        self.assertNotIn("no-cout", self.rules_found(rel))

    # --- trace-static-name ---

    def test_trace_name_flagged_everywhere(self):
        rel = self.place("trace_name_bad.cc", "src/core/trace_name_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "trace-static-name"]
        self.assertEqual([v.line for v in violations], [7, 8, 9])
        rel = self.place("trace_name_bad.cc", "bench/trace_name_bad.cc")
        self.assertIn("trace-static-name", self.rules_found(rel))

    def test_trace_name_literal_across_lines_is_clean(self):
        rel = self.place("trace_name_bad.cc", "src/core/trace_name_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "trace-static-name"]
        self.assertNotIn(14, [v.line for v in violations])  # "rpc_call" literal
        self.assertNotIn(15, [v.line for v in violations])  # literal on next line

    def test_trace_name_suppressed(self):
        rel = self.place("trace_name_suppressed.cc", "src/core/trace_name_suppressed.cc")
        self.assertNotIn("trace-static-name", self.rules_found(rel))

    def test_trace_name_skips_macro_definitions(self):
        dest = os.path.join(self.root, "src/trace/trace_macros.h")
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        with open(dest, "w", encoding="utf-8") as f:
            f.write("#ifndef SRC_TRACE_TRACE_MACROS_H_\n"
                    "#define SRC_TRACE_TRACE_MACROS_H_\n"
                    "#define ODY_TRACE_INSTANT(rec, cat, name, ts, id) \\\n"
                    "  ODY_TRACE_EVENT_(rec, cat, kInstant, name, ts, id)\n"
                    "#endif  // SRC_TRACE_TRACE_MACROS_H_\n")
        self.assertNotIn("trace-static-name",
                         self.rules_found("src/trace/trace_macros.h"))

    # --- harness-no-raw-thread ---

    def test_raw_thread_flagged_in_library(self):
        rel = self.place("harness_thread_bad.cc", "src/core/harness_thread_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "harness-no-raw-thread"]
        # std::thread, .detach(), and std::jthread each fire.
        self.assertEqual([v.line for v in violations], [7, 8, 9])

    def test_worker_pool_may_use_threads_but_never_detach(self):
        rel = self.place("harness_thread_bad.cc", "src/harness/worker_pool.cc")
        violations = [v for v in self.lint(rel) if v.rule == "harness-no-raw-thread"]
        self.assertEqual([v.line for v in violations], [8])  # only the detach
        self.assertIn("detach", violations[0].message)

    def test_raw_thread_allowed_outside_library_except_detach(self):
        rel = self.place("harness_thread_bad.cc", "tests/harness_thread_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "harness-no-raw-thread"]
        self.assertEqual([v.line for v in violations], [8])  # only the detach

    def test_raw_thread_suppressed(self):
        rel = self.place("harness_thread_suppressed.cc",
                         "src/core/harness_thread_suppressed.cc")
        self.assertNotIn("harness-no-raw-thread", self.rules_found(rel))

    # --- harness-no-global-state ---

    def test_global_state_flagged_in_harness(self):
        rel = self.place("harness_state_bad.cc", "src/harness/harness_state_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "harness-no-global-state"]
        # The global counter, the function-local static, and the mutable
        # member fire; static const / static constexpr stay clean.
        self.assertEqual([v.line for v in violations], [4, 9, 14])

    def test_global_state_allowed_outside_harness(self):
        rel = self.place("harness_state_bad.cc", "src/core/harness_state_bad.cc")
        self.assertNotIn("harness-no-global-state", self.rules_found(rel))

    def test_global_state_suppressed(self):
        rel = self.place("harness_state_suppressed.cc",
                         "src/harness/harness_state_suppressed.cc")
        self.assertNotIn("harness-no-global-state", self.rules_found(rel))

    # --- test-no-wallclock ---

    def test_wallclock_in_tests_flagged(self):
        rel = self.place("test_wallclock_bad.cc", "tests/test_wallclock_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "test-no-wallclock"]
        # steady_clock, sleep_for, system_clock each fire once.
        self.assertEqual([v.line for v in violations], [8, 9, 10])

    def test_wallclock_rule_scoped_to_tests(self):
        # src/ has its own wall-clock rule (scoped to the simulated dirs);
        # bench and examples may legitimately time themselves.
        for tree in ("src/metrics", "bench", "examples"):
            rel = self.place("test_wallclock_bad.cc", tree + "/test_wallclock_bad.cc")
            self.assertNotIn("test-no-wallclock", self.rules_found(rel))

    def test_wallclock_in_tests_suppressed(self):
        rel = self.place("test_wallclock_suppressed.cc",
                         "tests/test_wallclock_suppressed.cc")
        self.assertNotIn("test-no-wallclock", self.rules_found(rel))

    # --- fleet-pod-message ---

    def test_fleet_pod_message_flagged(self):
        rel = self.place("fleet_message_bad.cc", "src/fleet/fleet_message_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "fleet-pod-message"]
        # The missing static_assert (reported at the struct), the non-POD
        # member, the raw pointer, the wall-clock read, and the
        # literal-seeded stream each fire once.
        self.assertEqual(sorted(v.line for v in violations), [9, 10, 11, 16, 17])
        messages = " ".join(v.message for v in violations)
        self.assertIn("static_assert", messages)
        self.assertIn("non-POD", messages)
        self.assertIn("raw pointer", messages)

    def test_fleet_pod_message_scoped_to_fleet(self):
        rel = self.place("fleet_message_bad.cc", "src/core/fleet_message_bad.cc")
        self.assertNotIn("fleet-pod-message", self.rules_found(rel))

    def test_fleet_pod_message_suppressed(self):
        rel = self.place("fleet_message_suppressed.cc",
                         "src/fleet/fleet_message_suppressed.cc")
        self.assertNotIn("fleet-pod-message", self.rules_found(rel))

    # --- strategy-isolation ---

    def test_strategy_isolation_flagged(self):
        rel = self.place("strategy_isolation_bad.cc",
                         "src/strategies/strategy_isolation_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "strategy-isolation"]
        # The two internal includes, the wall-clock read, and the two
        # observation writes each fire once.
        self.assertEqual(sorted(v.line for v in violations), [2, 3, 8, 9, 10])
        messages = " ".join(v.message for v in violations)
        self.assertIn("estimator's", messages)
        self.assertIn("wall-clock", messages)
        self.assertIn("RecordThroughput", messages)

    def test_strategy_isolation_scoped_to_strategies(self):
        rel = self.place("strategy_isolation_bad.cc",
                         "src/core/strategy_isolation_bad.cc")
        self.assertNotIn("strategy-isolation", self.rules_found(rel))

    def test_strategy_isolation_suppressed(self):
        rel = self.place("strategy_isolation_suppressed.cc",
                         "src/strategies/strategy_isolation_suppressed.cc")
        self.assertNotIn("strategy-isolation", self.rules_found(rel))

    # --- header-guard ---

    def test_header_guard_mismatch_flagged(self):
        rel = self.place("header_guard_bad.h", "src/core/header_guard_bad.h")
        violations = [v for v in self.lint(rel) if v.rule == "header-guard"]
        self.assertEqual(len(violations), 1)
        self.assertIn("SRC_CORE_HEADER_GUARD_BAD_H_", violations[0].message)

    def test_header_guard_correct_is_clean(self):
        dest = os.path.join(self.root, "src/core/good.h")
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        with open(dest, "w", encoding="utf-8") as f:
            f.write("#ifndef SRC_CORE_GOOD_H_\n#define SRC_CORE_GOOD_H_\n"
                    "#endif  // SRC_CORE_GOOD_H_\n")
        self.assertNotIn("header-guard", self.rules_found("src/core/good.h"))

    # --- include-order ---

    def test_include_order_flagged(self):
        rel = self.place("include_order_bad.cc", "src/core/include_order_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "include-order"]
        messages = " ".join(v.message for v in violations)
        self.assertIn("not root-relative", messages)
        self.assertIn("sorted order", messages)

    def test_include_order_suppressed(self):
        rel = self.place("include_order_suppressed.cc",
                         "src/core/include_order_suppressed.cc")
        self.assertNotIn("include-order", self.rules_found(rel))

    def test_own_header_must_come_first(self):
        dest = os.path.join(self.root, "src/core/thing.cc")
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        with open(dest, "w", encoding="utf-8") as f:
            f.write('#include "src/core/status.h"\n#include "src/core/thing.h"\n')
        violations = [v for v in self.lint("src/core/thing.cc")
                      if v.rule == "include-order"]
        self.assertTrue(any("own header" in v.message for v in violations))

    # --- escape-capture ---

    def test_escape_capture_flags_both_historical_bug_shapes(self):
        rel = self.place("escape_capture_bad.cc", "src/core/escape_capture_bad.cc")
        violations = [v for v in self.lint(rel) if v.rule == "escape-capture"]
        # Lines 28/29: the bench dangling-stack-capture shape (Schedule/Post
        # over a dead frame).  Line 36: the client teardown use-after-free
        # shape (observer wired to stack state).  Line 44: the member-
        # assignment form.  [this] and by-value captures stay clean.
        self.assertEqual([v.line for v in violations], [28, 29, 36, 44])

    def test_escape_capture_owned_capture_annotations(self):
        rel = self.place("escape_capture_suppressed.cc",
                         "src/core/escape_capture_suppressed.cc")
        self.assertNotIn("escape-capture", self.rules_found(rel))

    def test_escape_capture_scoped_out_of_tests(self):
        rel = self.place("escape_capture_bad.cc", "tests/escape_capture_bad.cc")
        self.assertNotIn("escape-capture", self.rules_found(rel))

    def test_escape_capture_cross_file_context(self):
        self.place("escape_capture_sinks.h", "src/core/escape_capture_sinks.h")
        rel = self.place("escape_capture_cross.cc", "src/core/escape_capture_cross.cc")
        # Without the cross-file context the sinks are invisible and the
        # file lints clean; with it, both storing sinks fire and the
        # inline-invoking function stays clean.
        self.assertNotIn("escape-capture", self.rules_found(rel))
        context = ody_lint.build_context(self.root, ody_lint.collect_files(self.root, []))
        self.assertIn("WatchLevel", context.sink_names)
        self.assertIn("Debouncer", context.sink_names)
        self.assertNotIn("ApplyNow", context.sink_names)
        violations = [v for v in ody_lint.lint_file(self.root, rel, context)
                      if v.rule == "escape-capture"]
        self.assertEqual([v.line for v in violations], [10, 15])

    def test_escape_capture_cli_uses_cross_file_context(self):
        self.place("escape_capture_sinks.h", "src/core/escape_capture_sinks.h")
        self.place("escape_capture_cross.cc", "src/core/escape_capture_cross.cc")
        self.assertEqual(ody_lint.main(["--root", self.root]), 1)

    # --- CLI driver ---

    def test_cli_exit_codes_and_scan(self):
        self.place("wall_clock_bad.cc", "src/sim/wall_clock_bad.cc")
        self.assertEqual(ody_lint.main(["--root", self.root]), 1)
        shutil.rmtree(os.path.join(self.root, "src"))
        self.place("no_cout_bad.cc", "bench/no_cout_bad.cc")  # out of scope: clean
        self.assertEqual(ody_lint.main(["--root", self.root]), 0)
        self.assertEqual(ody_lint.main(["--root", os.path.join(self.root, "absent")]), 2)

    def test_list_rules_covers_all_checks(self):
        self.assertEqual(ody_lint.main(["--list-rules"]), 0)
        self.assertEqual(len(ody_lint.RULES), 13)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""ody_lint: Odyssey-specific lint rules the compiler cannot enforce.

The simulation's determinism and the paper-reproduction experiments rest on
conventions that are invisible to the type system: no wall-clock time inside
the simulated subsystems, no randomness outside the seeded generator, no
exact floating-point comparison of resource levels, no stray stdout in
library code, and uniform header guards / include order.  This tool enforces
them at the text level, with an annotated-suppression syntax:

    some_call();  // ody-lint: allow(rule-name)

suppresses a violation on that line (or, on a line of its own, on the next
line), and

    // ody-lint: allow-file(rule-name)

suppresses a rule for the whole file.  The escape-capture rule additionally
honors a purpose-built annotation,

    sink([&x] { ... });  // ody_lint: owned-capture

(same line or the line before, either spelling of the tool name), which
asserts the by-reference captures outlive every invocation of the callable.
Run from the repository root:

    python3 tools/ody_lint/ody_lint.py            # lint the tree
    python3 tools/ody_lint/ody_lint.py --list-rules

Exit status is 0 when clean, 1 when violations were found, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys

# --- Rule registry ----------------------------------------------------------

RULES = {
    "wall-clock": (
        "wall-clock time source inside a simulated subsystem; all time must "
        "flow from Simulation::now()"
    ),
    "unseeded-random": (
        "randomness outside src/sim/random.h; all streams must derive from "
        "the trial's seed (src/mobility is stricter still: no <random> "
        "distributions and no literal-seeded generators — models take "
        "explicit SplitMix64-derived seeds)"
    ),
    "float-equal": (
        "exact floating-point comparison; use a tolerance or integer units"
    ),
    "no-cout": (
        "stdout output in library code; return data or use the metrics layer"
    ),
    "header-guard": (
        "header guard must be the uppercased project-relative path"
    ),
    "include-order": (
        "own header first, then sorted blocks of root-relative includes"
    ),
    "trace-static-name": (
        "ODY_TRACE_* event names must be string literals; the recorder "
        "stores the pointer, so a built string would dangle and allocate"
    ),
    "harness-no-raw-thread": (
        "raw std::thread in src/ outside src/harness/worker_pool, or a "
        "detached thread anywhere; concurrency flows through RunIndexedTasks"
    ),
    "harness-no-global-state": (
        "static non-const or mutable state in src/harness/; campaign trials "
        "are shared-nothing, so the engine may hold no cross-trial state"
    ),
    "test-no-wallclock": (
        "wall-clock reads or real sleeping in tests/; tests advance virtual "
        "time with Simulation::RunUntil, never by waiting"
    ),
    "escape-capture": (
        "by-reference lambda capture handed to a callback sink (a call that "
        "stores the callable beyond the call); capture by value/move, or "
        "annotate '// ody_lint: owned-capture' after proving the referents "
        "outlive every invocation"
    ),
    "fleet-pod-message": (
        "fleet wire payloads must stay POD and deterministic: no raw "
        "pointers, references, or owning containers in a *Message struct "
        "(each must static_assert trivial copyability), and src/fleet may "
        "use no wall-clock calls or literal-seeded generators — every "
        "stream derives from the explicit trial seed via SplitMix64"
    ),
    "strategy-isolation": (
        "a bandwidth strategy reaching around its interface: wall-clock "
        "reads (time flows in as Time arguments or Simulation::now()), "
        "estimator-internal includes (ewma/sliding_max/usage_meter — "
        "consume estimation via supply_model.h or "
        "connection_estimator.h), or writes into the observation logs "
        "(RecordThroughput/RecordRoundTrip belong to the RPC layer; "
        "strategies read estimates, never feed them)"
    ),
}

# Directories whose sources are scanned at all.
SCAN_DIRS = ("src", "tests", "bench", "examples")
# Library code: rules about runtime behaviour apply here only.
LIBRARY_DIRS = ("src",)
# The simulated subsystems: anything here taking wall-clock time breaks
# virtual-time determinism.
SIMULATED_DIRS = ("src/sim", "src/net", "src/estimator")
# The one blessed home for entropy.
RANDOM_HOME = "src/sim/random.h"
# The mobility models carry a stronger contract than the rest of src/: a
# track must be a pure function of the explicit (seed, params) arguments, so
# even the blessed Rng is off-limits when seeded with a literal (every trial
# would replay the same track regardless of its seed), and <random>
# distributions are banned outright (their sampling algorithms are
# implementation-defined, which breaks bit-identical tracks across
# platforms).
MOBILITY_DIRS = ("src/mobility",)
# The one blessed home for threads (see worker_pool.h's contract).
THREAD_HOME = ("src/harness/worker_pool.h", "src/harness/worker_pool.cc")
# The campaign engine: jobs-invariance requires it to stay shared-nothing.
HARNESS_DIRS = ("src/harness",)
# Tests: any dependence on real time makes a test flaky and unreproducible.
TEST_DIRS = ("tests",)

SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

_ALLOW_RE = re.compile(r"//\s*ody-lint:\s*allow\(([^)]*)\)")
_ALLOW_FILE_RE = re.compile(r"//\s*ody-lint:\s*allow-file\(([^)]*)\)")


@dataclasses.dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class SourceFile:
    """A parsed source file: raw lines, comment/string-stripped lines, and
    the suppression sets harvested from its comments."""

    relpath: str
    lines: list[str]
    code_lines: list[str]  # comments and string literals blanked out
    line_allows: dict[int, set[str]]  # 1-based line -> suppressed rules
    file_allows: set[str]

    def suppressed(self, rule: str, line: int) -> bool:
        return rule in self.file_allows or rule in self.line_allows.get(line, set())


def _strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string literals, and char literals, preserving the
    line structure so offsets keep meaning."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            terminator = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == terminator:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def parse_file(root: str, relpath: str) -> SourceFile:
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        text = f.read()
    lines = text.splitlines()
    code_lines = _strip_comments_and_strings(text).splitlines()

    line_allows: dict[int, set[str]] = {}
    file_allows: set[str] = set()
    for idx, line in enumerate(lines, start=1):
        m = _ALLOW_FILE_RE.search(line)
        if m:
            file_allows.update(r.strip() for r in m.group(1).split(","))
        m = _ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            stripped = line.strip()
            if stripped.startswith("//"):
                # A standalone annotation line covers the next line.
                line_allows.setdefault(idx + 1, set()).update(rules)
            else:
                line_allows.setdefault(idx, set()).update(rules)
    return SourceFile(relpath, lines, code_lines, line_allows, file_allows)


def _in_dirs(relpath: str, dirs: tuple[str, ...]) -> bool:
    return any(relpath == d or relpath.startswith(d + "/") for d in dirs)


# --- Content rules ----------------------------------------------------------

_WALL_CLOCK_RE = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock|gettimeofday|"
    r"localtime|gmtime|strftime|mktime|clock\s*\(\s*\)|time\s*\()"
)

_RANDOM_RE = re.compile(
    r"\b(rand\s*\(|srand\s*\(|random_device\b|default_random_engine\b|"
    r"mt19937(?:_64)?\b|minstd_rand0?\b|ranlux(?:24|48)(?:_base)?\b|knuth_b\b)"
)

# The extra patterns applied under MOBILITY_DIRS: any <random> distribution
# template, and an Rng/SplitMix64 constructed from an integer literal.
_MOBILITY_RANDOM_RE = re.compile(
    r"(\b\w+_distribution\s*<"
    r"|\b(?:Rng|SplitMix64)(?:\s+\w+)?\s*[({]\s*\d[0-9'a-fA-FxX]*[uUlL]*\s*[)}])"
)

_COUT_RE = re.compile(r"(std::cout|\bprintf\s*\(|\bfprintf\s*\(\s*stdout\b|\bputs\s*\()")

_FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fFlL]?"
_FLOAT_EQ_RE = re.compile(
    rf"(?:(?<![<>=!+\-*/&|^])(==|!=)\s*{_FLOAT_LITERAL})|(?:{_FLOAT_LITERAL}\s*(==|!=)(?!=))"
)


def check_wall_clock(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, SIMULATED_DIRS):
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _WALL_CLOCK_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "wall-clock",
                                 f"wall-clock call '{m.group(0).strip()}' in a simulated "
                                 "subsystem; use Simulation::now()"))
    return out


def check_unseeded_random(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, LIBRARY_DIRS) or sf.relpath == RANDOM_HOME:
        return []
    out = []
    mobility = _in_dirs(sf.relpath, MOBILITY_DIRS)
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _RANDOM_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "unseeded-random",
                                 f"'{m.group(0).strip()}' bypasses the seeded Rng in "
                                 "src/sim/random.h"))
            continue
        if mobility:
            m = _MOBILITY_RANDOM_RE.search(line)
            if m:
                out.append(Violation(sf.relpath, idx, "unseeded-random",
                                     f"'{m.group(0).strip()}' in a mobility model; a track "
                                     "must be a pure function of the explicit trial seed — "
                                     "derive every stream via SplitMix64 from the (seed, "
                                     "params) arguments, never from a literal seed or a "
                                     "<random> distribution"))
    return out


def check_float_equal(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, LIBRARY_DIRS):
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        if "==" not in line and "!=" not in line:
            continue
        if _FLOAT_EQ_RE.search(line):
            out.append(Violation(sf.relpath, idx, "float-equal",
                                 "exact comparison against a floating-point literal; "
                                 "bandwidth/fidelity values need a tolerance"))
    return out


def check_no_cout(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, LIBRARY_DIRS):
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _COUT_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "no-cout",
                                 f"'{m.group(0).strip()}' writes to stdout from library "
                                 "code"))
    return out


# The recording macros whose third argument is the event name.
_TRACE_MACRO_RE = re.compile(
    r"\bODY_TRACE_(?:INSTANT[12]?|COUNTER|BEGIN[12]?|END1?)\s*\("
)
# One or more concatenated string literals, nothing else.
_STRING_LITERAL_RE = re.compile(r'^\s*(?:"(?:[^"\\]|\\.)*"\s*)+$')


def _split_top_level_args(text: str, start: int) -> list[tuple[int, int]]:
    """Returns (begin, end) offsets of the top-level arguments of the call
    whose opening parenthesis is at |start|; empty on unbalanced input."""
    depth = 0
    args = []
    arg_begin = start + 1
    for i in range(start, len(text)):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append((arg_begin, i))
                return args
        elif c == "," and depth == 1:
            args.append((arg_begin, i))
            arg_begin = i + 1
    return []


def check_trace_static_name(sf: SourceFile) -> list[Violation]:
    # Calls are located in the stripped text (so commented-out examples do
    # not match and string contents cannot confuse the argument splitter),
    # but the name argument itself is read from the raw text, where its
    # literal survives.
    code_text = "\n".join(sf.code_lines)
    raw_text = "\n".join(sf.lines)
    out = []
    for m in _TRACE_MACRO_RE.finditer(code_text):
        line_no = code_text.count("\n", 0, m.start()) + 1
        line_begin = code_text.rfind("\n", 0, m.start()) + 1
        if code_text[line_begin:m.start()].lstrip().startswith("#"):
            continue  # the macro definitions themselves
        args = _split_top_level_args(code_text, m.end() - 1)
        if len(args) < 3:
            continue
        name_begin, name_end = args[2]
        if not _STRING_LITERAL_RE.match(raw_text[name_begin:name_end]):
            got = " ".join(raw_text[name_begin:name_end].split())
            out.append(Violation(sf.relpath, line_no, "trace-static-name",
                                 f"trace event name '{got}' is not a string literal; "
                                 "the recorder keeps the pointer, not a copy"))
    return out


_THREAD_RE = re.compile(r"\bstd::(?:thread|jthread)\b|\bpthread_create\b")
_DETACH_RE = re.compile(r"\.\s*detach\s*\(")


def check_harness_thread(sf: SourceFile) -> list[Violation]:
    thread_restricted = _in_dirs(sf.relpath, LIBRARY_DIRS) and sf.relpath not in THREAD_HOME
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _THREAD_RE.search(line)
        if thread_restricted and m:
            out.append(Violation(sf.relpath, idx, "harness-no-raw-thread",
                                 f"'{m.group(0)}' outside src/harness/worker_pool; "
                                 "run concurrent work through RunIndexedTasks"))
        # A detached thread outlives whatever spawned it, which no part of
        # this codebase can ever need: flagged everywhere, thread home too.
        if _DETACH_RE.search(line):
            out.append(Violation(sf.relpath, idx, "harness-no-raw-thread",
                                 "detached thread; every thread must be joined by "
                                 "the RunIndexedTasks call that created it"))
    return out


# `static` not immediately qualified as immutable.  \b does not match before
# an underscore, so static_cast/static_assert never trip this.
_MUTABLE_STATIC_RE = re.compile(r"\bstatic\b(?!\s+(?:const|constexpr)\b)")
_MUTABLE_MEMBER_RE = re.compile(r"\bmutable\b")


def check_harness_global_state(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, HARNESS_DIRS):
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        if _MUTABLE_STATIC_RE.search(line):
            out.append(Violation(sf.relpath, idx, "harness-no-global-state",
                                 "non-const static in the campaign engine; state that "
                                 "survives a trial breaks shared-nothing execution"))
        if _MUTABLE_MEMBER_RE.search(line):
            out.append(Violation(sf.relpath, idx, "harness-no-global-state",
                                 "mutable member in the campaign engine; trials must "
                                 "not communicate through hidden writable state"))
    return out


# A test that reads a real clock or really sleeps is flaky by construction
# and defeats the virtual-time determinism every suite here relies on.
_TEST_WALL_CLOCK_RE = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock|sleep_for|"
    r"sleep_until|usleep|nanosleep)\b"
)


def check_test_no_wallclock(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, TEST_DIRS):
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _TEST_WALL_CLOCK_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "test-no-wallclock",
                                 f"'{m.group(0)}' in a test; advance virtual time with "
                                 "Simulation::RunUntil instead of waiting on the real "
                                 "clock"))
    return out


# --- fleet-pod-message ------------------------------------------------------
#
# Fleet messages cross node boundaries by value on the virtual-time bus
# (src/fleet/fleet_dispatcher.h): a payload smuggling a pointer would alias
# one node's state from another (and chase freed memory on replay), and any
# wall-clock read or unseeded entropy in the fleet layer would break the
# bit-reproducibility the tier_fleet j1-vs-j4 gate proves.  So every struct
# named *Message under src/fleet must hold only POD scalars and carry a
# trivially-copyable static_assert, and fleet sources must seed every
# stream from the explicit trial seed (mirroring the mobility contract:
# literal-seeded Rng/SplitMix64 replays the same stream for every trial).

FLEET_DIRS = ("src/fleet",)

_FLEET_MESSAGE_STRUCT_RE = re.compile(r"\bstruct\s+(\w*Message)\b")
_FLEET_NONPOD_MEMBER_RE = re.compile(
    r"std::(?:string|vector|map|set|deque|list|function|unique_ptr|"
    r"shared_ptr|weak_ptr|optional|variant|any)\b"
)
_FLEET_POINTER_MEMBER_RE = re.compile(r"[*&]\s*\w+\s*(?:=[^;]*)?;")
_FLEET_LITERAL_SEED_RE = re.compile(
    r"\b(?:Rng|SplitMix64)(?:\s+\w+)?\s*[({]\s*\d[0-9'a-fA-FxX]*[uUlL]*\s*[)}]"
)


def check_fleet_pod_message(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, FLEET_DIRS):
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _WALL_CLOCK_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "fleet-pod-message",
                                 f"wall-clock call '{m.group(0).strip()}' in the fleet "
                                 "layer; fleet runs must be bit-reproducible, so all "
                                 "time flows from Simulation::now()"))
        m = _FLEET_LITERAL_SEED_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "fleet-pod-message",
                                 f"'{m.group(0).strip()}' seeds a stream from a "
                                 "literal; derive it from the explicit trial seed "
                                 "via SplitMix64"))

    text = "\n".join(sf.code_lines)
    for m in _FLEET_MESSAGE_STRUCT_RE.finditer(text):
        name = m.group(1)
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth = 0
        end = -1
        for j in range(brace, len(text)):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    end = j
                    break
        if end < 0:
            continue
        struct_line = text.count("\n", 0, brace) + 1
        for offset, body_line in enumerate(text[brace:end].splitlines()):
            line_no = struct_line + offset
            if _FLEET_NONPOD_MEMBER_RE.search(body_line):
                out.append(Violation(sf.relpath, line_no, "fleet-pod-message",
                                     f"non-POD member in {name}; fleet payloads are "
                                     "copied by value into delivery events and must "
                                     "hold plain scalars only"))
            elif _FLEET_POINTER_MEMBER_RE.search(body_line):
                out.append(Violation(sf.relpath, line_no, "fleet-pod-message",
                                     f"raw pointer or reference member in {name}; a "
                                     "payload crossing nodes must not carry another "
                                     "node's addresses"))
        if not re.search(rf"static_assert\s*\(\s*std::is_trivially_copyable"
                         rf"(?:_v)?\s*<\s*{re.escape(name)}\s*>", text):
            out.append(Violation(sf.relpath, struct_line, "fleet-pod-message",
                                 f"{name} lacks a static_assert(std::is_trivially_"
                                 f"copyable_v<{name}>) beside its definition"))
    return out


# --- strategy-isolation -----------------------------------------------------
#
# The strategy zoo's conformance kit proves behavioral properties (bit-
# identical reruns, degenerate-input equivalence) that hold only if every
# strategy is a pure function of what the interface hands it: Time arguments
# and the estimation surface.  A strategy reading a real clock, reaching
# into the estimator's internal machinery, or feeding observations back into
# the logs it is supposed to consume would pass the interface's type checks
# while silently breaking determinism or double-counting traffic.

STRATEGY_DIRS = ("src/strategies",)

# The estimation machinery strategies may NOT include directly; the blessed
# surfaces are supply_model.h and connection_estimator.h.
_STRATEGY_INTERNAL_INCLUDE_RE = re.compile(
    r'#\s*include\s+"src/estimator/(?:ewma|sliding_max|usage_meter)\.h"'
)

# Observation writes: the RPC layer records, strategies only read.
_STRATEGY_MUTATION_RE = re.compile(r"\b(RecordThroughput|RecordRoundTrip)\s*\(")


def check_strategy_isolation(sf: SourceFile) -> list[Violation]:
    if not _in_dirs(sf.relpath, STRATEGY_DIRS):
        return []
    out = []
    # Includes are string literals, blanked in code_lines: scan raw lines.
    for idx, line in enumerate(sf.lines, start=1):
        m = _STRATEGY_INTERNAL_INCLUDE_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "strategy-isolation",
                                 f"'{m.group(0).strip()}' reaches into the estimator's "
                                 "internals; strategies consume estimation through "
                                 "src/estimator/supply_model.h or "
                                 "src/estimator/connection_estimator.h"))
    for idx, line in enumerate(sf.code_lines, start=1):
        m = _WALL_CLOCK_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "strategy-isolation",
                                 f"wall-clock call '{m.group(0).strip()}' in a strategy; "
                                 "time flows in as Time arguments or Simulation::now()"))
        m = _STRATEGY_MUTATION_RE.search(line)
        if m:
            out.append(Violation(sf.relpath, idx, "strategy-isolation",
                                 f"'{m.group(1)}' mutates an observation log from a "
                                 "strategy; recording belongs to the RPC layer, "
                                 "strategies read estimates only"))
    return out


# --- escape-capture (cross-file, two passes) --------------------------------
#
# The two lifetime bugs this repo has actually shipped (the OdysseyClient
# teardown use-after-free and a bench Schedule() capturing a dead stack
# frame) had the same shape: a lambda capturing by reference handed to a
# call that STORES the callable and invokes it later, after the captured
# frame is gone.  Pass one scans the whole tree for such "callback sinks" —
# functions that take a std::function-ish parameter and keep it (event
# scheduling, observer setters, constructors that stash the callable in a
# member) — plus std::function-typed members assignable at use sites.  Pass
# two flags every by-reference capture that flows into one, unless the site
# carries an '// ody_lint: owned-capture' annotation asserting the referents
# outlive every invocation ([this]-only captures are clean: an object
# handing out callbacks into itself manages that lifetime by construction).

# Callable-typed parameters these sinks always store (event queues hold the
# callback until the event fires; Tsop completion handlers ride the RPC).
_SEED_SINKS = frozenset({"Post", "PostAt", "Schedule", "ScheduleAt", "Tsop"})

# Observer/handler installers: name alone marks the parameter as outliving
# the call, whether or not the definition is visible to the scan.
_SETTER_SINK_RE = re.compile(r"^(?:set_\w+|Set[A-Z]\w*)$")

_FUNCTION_ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*std::function\s*<")

# A named function (or constructor) followed by its parameter list.
_DECL_OR_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Lambda introducer at the start of an argument; group 1 is the capture list.
_LAMBDA_ARG_RE = re.compile(r"^\s*\[([^\]]*)\]")

_OWNED_CAPTURE_RE = re.compile(r"//\s*ody[-_]lint:\s*owned-capture\b")

# escape-capture scope: library, bench and example code.  tests/ is exempt —
# the whole test suite runs under ASan on every push, so a dangling capture
# there is caught dynamically; bench and examples run rarely and unsanitized
# (the shipped bench bug survived precisely because of that), and library
# code should never rely on the sanitizer in the first place.
_ESCAPE_DIRS = ("src", "bench", "examples")


@dataclasses.dataclass
class AnalysisContext:
    """Cross-file facts pass one harvests for pass two."""

    sink_names: set[str]
    function_members: set[str]  # std::function-typed member/field names
    aliases: set[str]  # names aliased to std::function<...>


def _callback_param_names(args_text: list[str], aliases: set[str]) -> list[str]:
    """Returns the names of parameters whose type is std::function or one of
    the collected aliases; empty when the parameter list has none."""
    names = []
    for arg in args_text:
        arg = arg.strip()
        if not arg:
            continue
        is_callback = "std::function" in arg
        if not is_callback:
            head = arg.rsplit(None, 1)[0] if len(arg.split()) > 1 else ""
            for alias in aliases:
                if re.search(rf"\b{re.escape(alias)}\b", head):
                    is_callback = True
                    break
        if not is_callback:
            continue
        m = re.search(r"(\w+)\s*$", arg)
        if m:
            names.append(m.group(1))
    return names


def _body_region(text: str, close_paren: int) -> str:
    """Returns the ctor-init list and brace-matched body following a
    parameter list that ends at |close_paren|, or '' for a bare declaration."""
    i = close_paren + 1
    n = len(text)
    # Skip qualifiers (const, noexcept, override, trailing return) and the
    # ctor-init list up to the opening brace; a ';' first means no body.
    depth = 0
    body_start = -1
    for j in range(i, min(n, i + 4000)):
        c = text[j]
        if c == ";" and depth == 0:
            return text[i:j]  # ctor-init-only storage is impossible here
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == "{" and depth == 0:
            body_start = j
            break
    if body_start < 0:
        return text[i:min(n, i + 4000)]
    depth = 0
    for j in range(body_start, n):
        c = text[j]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return text[i:j + 1]
    return text[i:]


def _stores_param(region: str, param: str) -> bool:
    p = re.escape(param)
    patterns = (
        rf"std::move\s*\(\s*{p}\s*\)",          # moved = transferred somewhere
        rf"(?<![=!<>])=\s*{p}\b",               # member = param
        rf"\w+_\s*\(\s*{p}\b",                  # ctor-init member_(param)
        rf"\b(?:push_back|emplace_back|emplace|insert)\s*\(\s*{p}\b",
    )
    return any(re.search(pattern, region) for pattern in patterns)


def build_context(root: str, relpaths: list[str]) -> AnalysisContext:
    """Pass one: collects callback sinks, function-typed members, and
    std::function aliases across |relpaths|."""
    ctx = AnalysisContext(set(_SEED_SINKS), set(), set())
    texts: list[str] = []
    for relpath in relpaths:
        if not relpath.endswith(SOURCE_EXTENSIONS):
            continue
        try:
            sf = parse_file(root, relpath)
        except (OSError, UnicodeDecodeError):
            continue
        texts.append("\n".join(sf.code_lines))
        for line in sf.lines:
            m = _FUNCTION_ALIAS_RE.search(line)
            if m:
                ctx.aliases.add(m.group(1))

    member_re = None  # built after every alias is known
    for text in texts:
        if member_re is None:
            alias_alt = "|".join(re.escape(a) for a in sorted(ctx.aliases))
            type_alt = r"std::function\s*<[^;\n]*>" + (rf"|(?:{alias_alt})" if alias_alt else "")
            member_re = re.compile(rf"^\s*(?:const\s+)?(?:{type_alt})\s+(\w+)\s*(?:=[^;=]*)?;",
                                   re.MULTILINE)
        for m in member_re.finditer(text):
            ctx.function_members.add(m.group(1))
        for m in _DECL_OR_CALL_RE.finditer(text):
            name = m.group(1)
            if name in ctx.sink_names:
                continue
            args = _split_top_level_args(text, m.end() - 1)
            if not args:
                continue
            params = _callback_param_names([text[b:e] for b, e in args], ctx.aliases)
            if not params:
                continue
            if _SETTER_SINK_RE.match(name):
                ctx.sink_names.add(name)
                continue
            region = _body_region(text, args[-1][1])
            if any(_stores_param(region, p) for p in params):
                ctx.sink_names.add(name)
    return ctx


def _single_file_context(sf: SourceFile) -> AnalysisContext:
    ctx = AnalysisContext(set(_SEED_SINKS), set(), set())
    text = "\n".join(sf.code_lines)
    for line in sf.lines:
        m = _FUNCTION_ALIAS_RE.search(line)
        if m:
            ctx.aliases.add(m.group(1))
    alias_alt = "|".join(re.escape(a) for a in sorted(ctx.aliases))
    type_alt = r"std::function\s*<[^;\n]*>" + (rf"|(?:{alias_alt})" if alias_alt else "")
    member_re = re.compile(rf"^\s*(?:const\s+)?(?:{type_alt})\s+(\w+)\s*(?:=[^;=]*)?;",
                           re.MULTILINE)
    for m in member_re.finditer(text):
        ctx.function_members.add(m.group(1))
    for m in _DECL_OR_CALL_RE.finditer(text):
        name = m.group(1)
        if name in ctx.sink_names:
            continue
        args = _split_top_level_args(text, m.end() - 1)
        if not args:
            continue
        params = _callback_param_names([text[b:e] for b, e in args], ctx.aliases)
        if not params:
            continue
        if _SETTER_SINK_RE.match(name):
            ctx.sink_names.add(name)
        elif any(_stores_param(_body_region(text, args[-1][1]), p) for p in params):
            ctx.sink_names.add(name)
    return ctx


def _owned_capture_lines(sf: SourceFile) -> set[int]:
    return {idx for idx, line in enumerate(sf.lines, start=1)
            if _OWNED_CAPTURE_RE.search(line)}


def check_escape_capture(sf: SourceFile, ctx: AnalysisContext) -> list[Violation]:
    if not _in_dirs(sf.relpath, _ESCAPE_DIRS):
        return []
    text = "\n".join(sf.code_lines)
    owned = _owned_capture_lines(sf)
    out = []

    def line_of(offset: int) -> int:
        return text.count("\n", 0, offset) + 1

    def annotated(*line_numbers: int) -> bool:
        return any(line in owned or line - 1 in owned for line in line_numbers)

    def flag_lambda(arg_begin: int, call_line: int, sink: str) -> None:
        m = _LAMBDA_ARG_RE.match(text[arg_begin:arg_begin + 400])
        if not m or "&" not in m.group(1):
            return
        lambda_line = line_of(arg_begin + m.group(0).find("["))
        if annotated(lambda_line, call_line):
            return
        captures = " ".join(m.group(1).split())
        out.append(Violation(
            sf.relpath, lambda_line, "escape-capture",
            f"lambda captures by reference ('[{captures}]') at callback sink "
            f"'{sink}', which stores the callable beyond the call; a captured "
            "stack frame may be gone when it runs — capture by value, or "
            "annotate '// ody_lint: owned-capture' if the referents provably "
            "outlive every invocation"))

    # Sink call sites: foo(... [&...] ...), obj.foo(...), and constructor
    # declarations Type name(... [&...] ...).
    sink_alt = "|".join(re.escape(s) for s in sorted(ctx.sink_names))
    if sink_alt:
        call_re = re.compile(rf"\b({sink_alt})(?:\s+\w+)?\s*([({{])")
        for m in call_re.finditer(text):
            name = m.group(1)
            open_pos = m.end() - 1
            # `Type name(` is a declaration form only for capitalized sinks
            # (constructors); `sink ident(` for a lowercase sink is not a call.
            if m.group(0).split(name, 1)[1].lstrip()[0] not in "({" and not name[0].isupper():
                continue
            for arg_begin, _ in _split_top_level_args(text, open_pos):
                flag_lambda(arg_begin, line_of(m.start()), name)

    # Assignments into std::function-typed fields of another object:
    # d.handler = [&] {...}.  Dotted access only — initializing a LOCAL
    # std::function with a by-ref lambda is fine until something stores it,
    # and the store site is where the sink rules above fire.
    if ctx.function_members:
        member_alt = "|".join(re.escape(f) for f in sorted(ctx.function_members))
        assign_re = re.compile(rf"(?:\.|->)\s*({member_alt})\s*=\s*(?=\[)")
        for m in assign_re.finditer(text):
            flag_lambda(m.end(), line_of(m.start()), m.group(1) + " =")
    return out


# --- Structural rules -------------------------------------------------------

def expected_guard(relpath: str) -> str:
    return re.sub(r"[^A-Za-z0-9]", "_", relpath).upper() + "_"


def check_header_guard(sf: SourceFile) -> list[Violation]:
    if not sf.relpath.endswith((".h", ".hpp")):
        return []
    want = expected_guard(sf.relpath)
    ifndef_line = 0
    got = None
    for idx, line in enumerate(sf.code_lines, start=1):
        m = re.match(r"\s*#\s*ifndef\s+(\w+)", line)
        if m:
            ifndef_line = idx
            got = m.group(1)
            break
        if line.strip():
            break
    if got is None:
        return [Violation(sf.relpath, 1, "header-guard",
                          f"missing header guard; expected #ifndef {want}")]
    if got != want:
        return [Violation(sf.relpath, ifndef_line, "header-guard",
                          f"guard is {got}; expected {want}")]
    # The guard's #define must follow immediately.
    for idx in range(ifndef_line, len(sf.code_lines)):
        line = sf.code_lines[idx]
        if not line.strip():
            continue
        m = re.match(r"\s*#\s*define\s+(\w+)", line)
        if not m or m.group(1) != want:
            return [Violation(sf.relpath, idx + 1, "header-guard",
                              f"#ifndef {want} must be followed by #define {want}")]
        break
    return []


_INCLUDE_RE = re.compile(r'\s*#\s*include\s+(["<])([^">]+)[">]')

# Quoted includes must be root-relative into one of these trees.
_PROJECT_PREFIXES = ("src/", "tests/", "bench/", "examples/", "tools/")


def check_include_order(sf: SourceFile) -> list[Violation]:
    out = []
    includes: list[tuple[int, str, str]] = []  # (line, kind, path)
    # Raw lines, not code_lines: a quoted include path is a string literal,
    # which the stripper blanks out.
    for idx, line in enumerate(sf.lines, start=1):
        m = _INCLUDE_RE.match(line)
        if m:
            includes.append((idx, m.group(1), m.group(2)))

    own_header = None
    if sf.relpath.endswith((".cc", ".cpp")):
        stem = re.sub(r"\.(cc|cpp)$", "", sf.relpath)
        own_header = stem + ".h"

    for idx, kind, path in includes:
        if kind == '"' and not path.startswith(_PROJECT_PREFIXES):
            out.append(Violation(sf.relpath, idx, "include-order",
                                 f'"{path}" is not root-relative; include project '
                                 'headers by full path from the repository root'))

    if own_header and includes:
        quoted = [(idx, p) for idx, k, p in includes if k == '"']
        if any(p == own_header for _, p in quoted):
            first_idx, first_path = includes[0][0], includes[0][2]
            if first_path != own_header:
                out.append(Violation(sf.relpath, first_idx, "include-order",
                                     f'own header "{own_header}" must be the first '
                                     "include"))

    # Within each contiguous run of includes of the same kind, paths must be
    # sorted (the own-header line, exempt by convention, starts its own run).
    prev_line = -2
    prev_kind = ""
    prev_path = ""
    for idx, kind, path in includes:
        contiguous = idx == prev_line + 1 and kind == prev_kind
        if contiguous and own_header and prev_path == own_header:
            contiguous = False
        if contiguous and path < prev_path:
            out.append(Violation(sf.relpath, idx, "include-order",
                                 f'"{path}" breaks sorted order within its include '
                                 "block"))
        prev_line, prev_kind, prev_path = idx, kind, path
    return out


CHECKS = [
    check_wall_clock,
    check_unseeded_random,
    check_float_equal,
    check_no_cout,
    check_trace_static_name,
    check_harness_thread,
    check_harness_global_state,
    check_test_no_wallclock,
    check_fleet_pod_message,
    check_strategy_isolation,
    check_header_guard,
    check_include_order,
]

# --- Driver -----------------------------------------------------------------

def collect_files(root: str, paths: list[str]) -> list[str]:
    if paths:
        rels = []
        for p in paths:
            rel = os.path.relpath(os.path.abspath(p), root)
            rels.append(rel.replace(os.sep, "/"))
        return rels
    out = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    out.append(rel.replace(os.sep, "/"))
    return sorted(out)


def lint_file(root: str, relpath: str,
              context: AnalysisContext | None = None) -> list[Violation]:
    """Lints one file.  |context| carries the cross-file sink facts from
    build_context; when None (single-file invocations, the self-tests) the
    escape-capture pass sees only this file's own declarations."""
    sf = parse_file(root, relpath)
    violations = []
    for check in CHECKS:
        for v in check(sf):
            if not sf.suppressed(v.rule, v.line):
                violations.append(v)
    ctx = context if context is not None else _single_file_context(sf)
    for v in check_escape_capture(sf, ctx):
        if not sf.suppressed(v.rule, v.line):
            violations.append(v)
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root to lint")
    parser.add_argument("--list-rules", action="store_true", help="print rules and exit")
    parser.add_argument("paths", nargs="*", help="specific files (default: scan the tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}: {description}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"ody_lint: no such directory: {root}", file=sys.stderr)
        return 2

    relpaths = collect_files(root, args.paths)
    # Pass one always sees the whole tree, even when linting a file subset:
    # sink signatures live wherever they live.
    context = build_context(root, collect_files(root, []))
    violations: list[Violation] = []
    for relpath in relpaths:
        try:
            violations.extend(lint_file(root, relpath, context))
        except OSError as err:
            print(f"ody_lint: {err}", file=sys.stderr)
            return 2

    for v in violations:
        print(v)
    if violations:
        print(f"ody_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

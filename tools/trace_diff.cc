// trace_diff: canonicalize, validate, and compare odytrace exports.
//
// Usage:
//   trace_diff A.json B.json     compare two traces; exit 0 iff identical
//   trace_diff --validate A.json check one trace against the event schema
//   trace_diff --canon A.json    print the canonical form (debugging aid)
//
// Canonicalization strips metadata events and densely renumbers span/flow
// ids by first appearance, so two runs of the same seeded scenario compare
// equal even across processes (see DESIGN.md §9).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/trace/trace_diff.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_diff: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Validate(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    return 2;
  }
  const odyssey::TraceValidationResult result = odyssey::ValidateChromeTrace(text);
  if (!result.ok) {
    std::cerr << path << ": INVALID: " << result.error << "\n";
    return 1;
  }
  std::cout << path << ": OK (" << result.event_count << " events; categories:";
  for (const std::string& category : result.categories) {
    std::cout << " " << category;
  }
  std::cout << ")\n";
  return 0;
}

int Canonicalize(const std::string& path) {
  std::string text;
  std::string error;
  if (!ReadFile(path, &text)) {
    return 2;
  }
  const std::vector<std::string> lines = odyssey::CanonicalizeChromeTrace(text, &error);
  if (!error.empty()) {
    std::cerr << path << ": " << error << "\n";
    return 2;
  }
  for (const std::string& line : lines) {
    std::cout << line << "\n";
  }
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  std::string text_a;
  std::string text_b;
  if (!ReadFile(path_a, &text_a) || !ReadFile(path_b, &text_b)) {
    return 2;
  }
  std::string error;
  const std::vector<std::string> canon_a = odyssey::CanonicalizeChromeTrace(text_a, &error);
  if (!error.empty()) {
    std::cerr << path_a << ": " << error << "\n";
    return 2;
  }
  const std::vector<std::string> canon_b = odyssey::CanonicalizeChromeTrace(text_b, &error);
  if (!error.empty()) {
    std::cerr << path_b << ": " << error << "\n";
    return 2;
  }
  const odyssey::TraceDiffResult result = odyssey::DiffCanonical(canon_a, canon_b);
  if (result.identical) {
    std::cout << "identical: " << canon_a.size() << " canonical events\n";
    return 0;
  }
  std::cerr << "traces diverge: " << result.Format() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 2 && args[0] == "--validate") {
    return Validate(args[1]);
  }
  if (args.size() == 2 && args[0] == "--canon") {
    return Canonicalize(args[1]);
  }
  if (args.size() == 2 && args[0][0] != '-') {
    return Diff(args[0], args[1]);
  }
  std::cerr << "usage: trace_diff A.json B.json | --validate A.json | --canon A.json\n";
  return 2;
}

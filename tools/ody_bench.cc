// ody_bench: run experiment campaigns and gate on their artifacts.
//
// Usage:
//   ody_bench list
//       show every built-in campaign and registered scenario
//   ody_bench run --campaign=<name> [--jobs=N] [--seed=U64] [--out=PATH]
//                 [--trials-cap=N]
//       execute the campaign and write BENCH_<name>.json (or PATH);
//       --trials-cap caps every sweep's trial count (the TSan CI job runs a
//       reduced tier1 this way — capped artifacts are never baselines)
//   ody_bench compare --baseline=A.json --current=B.json [--tolerance=PCT]
//       exit 0 iff no gated metric mean regressed beyond the tolerance
//
// The artifact bytes are a pure function of (campaign, seed): --jobs only
// changes wall-clock time, never output — CI byte-diffs --jobs=1 against
// --jobs=4 to hold the runner to that.  Wall-clock time is printed here but
// deliberately never written into the artifact.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/scale_scenario.h"
#include "src/check/zoo_scenario.h"
#include "src/fleet/fleet_scenario.h"
#include "src/harness/bench_artifact.h"
#include "src/harness/builtin_scenarios.h"
#include "src/harness/campaign.h"
#include "src/harness/campaign_runner.h"
#include "src/harness/scenario_registry.h"
#include "src/harness/worker_pool.h"

namespace {

using odyssey::BenchArtifact;
using odyssey::CampaignResult;
using odyssey::CampaignRunOptions;
using odyssey::CampaignSpec;
using odyssey::ComparisonReport;
using odyssey::ComparisonRow;
using odyssey::MetricDirection;
using odyssey::MetricDirectionName;
using odyssey::Scenario;
using odyssey::ScenarioRegistry;
using odyssey::Status;

// Parses "--name=value" into |out|; returns false if |arg| is a different
// flag (or not a flag at all).
bool FlagValue(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ody_bench: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "ody_bench: cannot write " << path << "\n";
    return false;
  }
  return true;
}

// Everything ody_bench can run: the built-in campaigns plus tier_scale
// (scale_scenario.h, in odyssey_check), tier_fleet (fleet_scenario.h, in
// odyssey_fleet) and tier_zoo (zoo_scenario.h, in odyssey_check).
std::vector<CampaignSpec> AllCampaigns() {
  std::vector<CampaignSpec> campaigns = odyssey::BuiltinCampaigns();
  campaigns.push_back(odyssey::ScaleCampaign());
  campaigns.push_back(odyssey::FleetCampaign());
  campaigns.push_back(odyssey::ZooCampaign());
  return campaigns;
}

void RegisterAllScenarios(ScenarioRegistry* registry) {
  odyssey::RegisterBuiltinScenarios(registry);
  odyssey::RegisterScaleScenarios(registry);
  odyssey::RegisterFleetScenarios(registry);
  odyssey::RegisterZooScenarios(registry);
}

int ListCommand() {
  std::cout << "campaigns:\n";
  for (const CampaignSpec& campaign : AllCampaigns()) {
    std::cout << "  " << campaign.name << " - " << campaign.description << "\n";
  }
  ScenarioRegistry registry;
  RegisterAllScenarios(&registry);
  std::cout << "scenarios:\n";
  for (const std::string& name : registry.scenario_names()) {
    const Scenario* scenario = registry.Find(name);
    std::cout << "  " << name << " - " << scenario->description << " ("
              << scenario->variants.size() << " variants:";
    for (const odyssey::ScenarioVariant& variant : scenario->variants) {
      std::cout << " " << variant.name;
    }
    std::cout << ")\n";
  }
  return 0;
}

// Writes a copy of |artifact| with every machine-dependent wall_* metric
// removed.  The tier_scale trials report wall-clock rates, which are real
// measurements but not jobs-invariant; CI byte-compares the stripped
// artifacts to keep holding the runner to determinism.
bool WriteStrippedArtifact(const BenchArtifact& artifact, const std::string& path) {
  BenchArtifact stripped = artifact;
  std::erase_if(stripped.metrics, [](const odyssey::MetricSummary& summary) {
    return summary.metric.rfind("wall_", 0) == 0;
  });
  return WriteFile(path, ArtifactToJson(stripped));
}

int RunCommand(const std::vector<std::string>& args) {
  std::string campaign_name;
  std::string out_path;
  std::string strip_path;
  int jobs = odyssey::DefaultJobCount();
  uint64_t seed = 0;
  bool seed_set = false;
  int trials_cap = 0;  // 0 = unset (run the campaign's full trial counts)
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "campaign", &value)) {
      campaign_name = value;
    } else if (FlagValue(arg, "strip-wall-out", &value)) {
      strip_path = value;
    } else if (FlagValue(arg, "trials-cap", &value)) {
      uint64_t parsed = 0;
      if (!ParseU64(value, &parsed) || parsed == 0 || parsed > 100000) {
        std::cerr << "ody_bench: --trials-cap must be an integer in [1, 100000]\n";
        return 2;
      }
      trials_cap = static_cast<int>(parsed);
    } else if (FlagValue(arg, "jobs", &value)) {
      uint64_t parsed = 0;
      if (!ParseU64(value, &parsed) || parsed == 0 || parsed > 1024) {
        std::cerr << "ody_bench: --jobs must be an integer in [1, 1024]\n";
        return 2;
      }
      jobs = static_cast<int>(parsed);
    } else if (FlagValue(arg, "seed", &value)) {
      if (!ParseU64(value, &seed)) {
        std::cerr << "ody_bench: --seed must be a decimal uint64\n";
        return 2;
      }
      seed_set = true;
    } else if (FlagValue(arg, "out", &value)) {
      out_path = value;
    } else {
      std::cerr << "ody_bench: unknown run flag " << arg << "\n";
      return 2;
    }
  }
  if (campaign_name.empty()) {
    std::cerr << "ody_bench: run requires --campaign=<name> (see `ody_bench list`)\n";
    return 2;
  }

  const std::vector<CampaignSpec> campaigns = AllCampaigns();
  const CampaignSpec* found = odyssey::FindCampaign(campaigns, campaign_name);
  if (found == nullptr) {
    std::cerr << "ody_bench: unknown campaign " << campaign_name << "\n";
    return 2;
  }
  CampaignSpec spec = *found;
  if (seed_set) {
    spec.seed = seed;
  }
  if (trials_cap > 0) {
    // Reduced campaign for the slow instrumented gates (the TSan CI job):
    // same sweeps, same seed derivation, just fewer trials per variant.
    // Capped artifacts are for exercising the runner, not for baselines —
    // never feed one to `ody_bench compare`.
    for (odyssey::SweepSpec& sweep : spec.sweeps) {
      sweep.trials = std::min(sweep.trials, trials_cap);
    }
  }
  if (out_path.empty()) {
    out_path = "BENCH_" + spec.name + ".json";
  }

  ScenarioRegistry registry;
  RegisterAllScenarios(&registry);

  CampaignRunOptions options;
  options.jobs = jobs;
  CampaignResult result;
  const auto start = std::chrono::steady_clock::now();
  if (const Status status = RunCampaign(spec, registry, options, &result); !status.ok()) {
    std::cerr << "ody_bench: " << status.ToString() << "\n";
    return 2;
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  BenchArtifact artifact;
  if (const Status status = AggregateCampaign(result, &artifact); !status.ok()) {
    std::cerr << "ody_bench: " << status.ToString() << "\n";
    return 2;
  }
  if (!WriteFile(out_path, ArtifactToJson(artifact))) {
    return 2;
  }
  if (!strip_path.empty() && !WriteStrippedArtifact(artifact, strip_path)) {
    return 2;
  }
  // Wall-clock time goes to the console (CI logs the speedup from it), not
  // into the artifact, which must not depend on the machine or job count.
  std::printf("campaign %s: %llu trials, %zu metric summaries, jobs=%d, %.3f s wall\n",
              spec.name.c_str(), static_cast<unsigned long long>(artifact.trials),
              artifact.metrics.size(), jobs, elapsed.count());
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int CompareCommand(const std::vector<std::string>& args) {
  std::string baseline_path;
  std::string current_path;
  double tolerance_pct = 5.0;
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "baseline", &value)) {
      baseline_path = value;
    } else if (FlagValue(arg, "current", &value)) {
      current_path = value;
    } else if (FlagValue(arg, "tolerance", &value)) {
      char* end = nullptr;
      tolerance_pct = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() || tolerance_pct < 0.0) {
        std::cerr << "ody_bench: --tolerance must be a non-negative percentage\n";
        return 2;
      }
    } else {
      std::cerr << "ody_bench: unknown compare flag " << arg << "\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "ody_bench: compare requires --baseline=<json> and --current=<json>\n";
    return 2;
  }

  std::string baseline_text;
  std::string current_text;
  if (!ReadFile(baseline_path, &baseline_text) || !ReadFile(current_path, &current_text)) {
    return 2;
  }
  BenchArtifact baseline;
  BenchArtifact current;
  if (const Status status = ParseArtifact(baseline_text, &baseline); !status.ok()) {
    std::cerr << "ody_bench: " << baseline_path << ": " << status.ToString() << "\n";
    return 2;
  }
  if (const Status status = ParseArtifact(current_text, &current); !status.ok()) {
    std::cerr << "ody_bench: " << current_path << ": " << status.ToString() << "\n";
    return 2;
  }

  const ComparisonReport report = odyssey::CompareArtifacts(baseline, current, tolerance_pct);
  for (const std::string& failure : report.failures) {
    std::cout << "FAIL  " << failure << "\n";
  }
  int regressions = 0;
  for (const ComparisonRow& row : report.rows) {
    if (row.regressed) {
      ++regressions;
    }
    // Print regressions always; healthy rows only when they moved at all.
    if (row.regressed || row.delta_pct != 0.0) {
      std::printf("%s  %s/%s/%s (%s): baseline %.6g, current %.6g (%+.2f%%)\n",
                  row.regressed ? "REGRESSED" : "ok       ", row.scenario.c_str(),
                  row.variant.c_str(), row.metric.c_str(), MetricDirectionName(row.direction),
                  row.baseline_mean, row.current_mean, row.delta_pct);
    }
  }
  std::printf("compared %zu metrics at tolerance %.2f%%: %d regressed, %zu structural failures\n",
              report.rows.size(), tolerance_pct, regressions, report.failures.size());
  return report.ok() ? 0 : 1;
}

int Usage() {
  std::cerr << "usage:\n"
            << "  ody_bench list\n"
            << "  ody_bench run --campaign=<name> [--jobs=N] [--seed=U64] [--out=PATH]\n"
            << "                [--strip-wall-out=PATH] [--trials-cap=N]\n"
            << "  ody_bench compare --baseline=<json> --current=<json> [--tolerance=PCT]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "list" && args.empty()) {
    return ListCommand();
  }
  if (command == "run") {
    return RunCommand(args);
  }
  if (command == "compare") {
    return CompareCommand(args);
  }
  return Usage();
}
